//! Workspace symbol table and conservative call graph.
//!
//! Resolution is name-based and deliberately over-approximate: a method
//! call `x.scan(…)` adds an edge to *every* non-test fn named `scan` in
//! the workspace; `Type::scan(…)` narrows to fns whose enclosing
//! `impl`/`trait` targets `Type`. Missing an edge would silence a rule,
//! so ambiguity generally resolves toward *more* edges — the suppression
//! mechanism absorbs false positives — with two precision carve-outs that
//! keep the over-approximation from swallowing the whole workspace:
//!
//! - A qualified call whose type-like qualifier (uppercase initial, e.g.
//!   `Vec::new(…)`) matches no workspace impl resolves to *nothing*: it
//!   is a std/external constructor, and falling back name-wide would make
//!   every local `new` reachable from everywhere. Lowercase qualifiers
//!   (`math::dot(…)`) are module paths and still fall back name-wide.
//! - Shim fns are call-graph *barriers*: edges lead into them but never
//!   out. The rayon shim's dispatch machinery executes user closures, but
//!   those closures are lexically owned by the calling fn, so cutting the
//!   shim's own outgoing edges (thread plumbing, bookkeeping) loses no
//!   real hot-path coverage.
//!
//! Functions inside `#[cfg(test)]` / `#[test]` items are indexed (their
//! bodies still get owners) but are excluded as resolution *targets*:
//! test helpers sharing a hot-path name must not pull test code into the
//! reachable set.

use std::collections::BTreeMap;
use std::ops::Range;

use crate::items::{self, Item, ItemKind};
use crate::lexer::{Token, TokenKind};
use crate::rules::{self, FileContext};

/// One source file, lexed and parsed, ready for the semantic passes.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub src: String,
    pub ctx: FileContext,
    /// Full token stream (comments included; suppressions live here).
    pub tokens: Vec<Token>,
    /// Code tokens only (comments filtered) — what the matchers walk.
    pub code: Vec<Token>,
    pub items: Vec<Item>,
    /// Byte ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<Range<usize>>,
}

impl ParsedFile {
    pub fn parse(rel_path: String, src: String, ctx: FileContext) -> ParsedFile {
        let tokens = crate::lexer::lex(&src);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
        let items = items::parse_items(&src, &code);
        let test_ranges = rules::test_item_ranges(&src, &code);
        ParsedFile { rel_path, src, ctx, tokens, code, items, test_ranges }
    }

    /// Is byte offset `at` inside a test item?
    pub fn in_test(&self, at: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&at))
    }
}

/// A function node in the call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built over.
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
    pub name: String,
    pub impl_target: Option<String>,
    pub in_test: bool,
    /// Callee fn indices (deduplicated, sorted).
    pub callees: Vec<usize>,
}

/// How a function was reached from a seed set (BFS predecessor chain).
#[derive(Debug, Clone, Copy)]
pub struct Reach {
    /// The seed fn this node traces back to.
    pub seed: usize,
    /// Predecessor on the BFS path (`None` for the seed itself).
    pub via: Option<usize>,
}

pub struct CallGraph {
    pub fns: Vec<FnNode>,
    /// Non-test fns by name (resolution targets).
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: owning fn of each *code token* (innermost fn body).
    owners: Vec<Vec<Option<usize>>>,
}

impl CallGraph {
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut owners: Vec<Vec<Option<usize>>> = Vec::with_capacity(files.len());

        // Pass 1: the symbol table, plus token→fn owner maps. Items are
        // recorded parents-first, so inner fns overwrite their enclosing
        // fn in the owner map.
        for (fi, pf) in files.iter().enumerate() {
            let mut owner = vec![None; pf.code.len()];
            for (ii, item) in pf.items.iter().enumerate() {
                if item.kind != ItemKind::Fn {
                    continue;
                }
                let idx = fns.len();
                let in_test = pf.in_test(item.span.0);
                if let Some((s, e)) = item.body {
                    for o in owner.iter_mut().take(e.min(pf.code.len())).skip(s) {
                        *o = Some(idx);
                    }
                }
                if !in_test {
                    by_name.entry(item.name.clone()).or_default().push(idx);
                }
                fns.push(FnNode {
                    file: fi,
                    item: ii,
                    name: item.name.clone(),
                    impl_target: item.impl_target.clone(),
                    in_test,
                    callees: Vec::new(),
                });
            }
            owners.push(owner);
        }

        let mut graph = CallGraph { fns, by_name, owners };

        // Pass 2: call edges. Shim files are barriers — no outgoing edges.
        for (fi, pf) in files.iter().enumerate() {
            if pf.ctx.is_shim {
                continue;
            }
            graph.extract_calls(fi, pf);
        }
        for node in &mut graph.fns {
            node.callees.sort_unstable();
            node.callees.dedup();
        }
        graph
    }

    /// Owning fn of code token `tok` in file `file`, if any.
    pub fn owner_of(&self, file: usize, tok: usize) -> Option<usize> {
        self.owners.get(file).and_then(|o| o.get(tok).copied().flatten())
    }

    /// BFS from every fn `seeds` selects; returns per-fn reach info.
    pub fn reachable(&self, seeds: &[usize]) -> Vec<Option<Reach>> {
        let mut reach: Vec<Option<Reach>> = vec![None; self.fns.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < self.fns.len() && reach[s].is_none() {
                reach[s] = Some(Reach { seed: s, via: None });
                queue.push(s);
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let callees = self.fns[cur].callees.clone();
            let seed_idx = reach[cur].map(|r| r.seed).unwrap_or(cur);
            for c in callees {
                if reach[c].is_none() {
                    reach[c] = Some(Reach { seed: seed_idx, via: Some(cur) });
                    queue.push(c);
                }
            }
        }
        reach
    }

    /// Fns selected by a predicate — the usual way to pick seeds.
    pub fn select<F: Fn(&FnNode) -> bool>(&self, pred: F) -> Vec<usize> {
        (0..self.fns.len()).filter(|&i| !self.fns[i].in_test && pred(&self.fns[i])).collect()
    }

    /// Human-readable call chain `seed → … → fn` for diagnostics. Long
    /// chains keep the endpoints and elide the middle.
    pub fn chain(&self, reach: &[Option<Reach>], idx: usize) -> String {
        let mut names: Vec<&str> = Vec::new();
        let mut cur = idx;
        let mut hops = 0usize;
        while hops < 64 {
            names.push(self.fns[cur].name.as_str());
            match reach.get(cur).copied().flatten().and_then(|r| r.via) {
                Some(prev) => cur = prev,
                None => break,
            }
            hops += 1;
        }
        names.reverse();
        if names.len() > 5 {
            let skipped = names.len() - 4;
            format!(
                "{} → {} → … ({} calls) → {} → {}",
                names[0],
                names[1],
                skipped,
                names[names.len() - 2],
                names[names.len() - 1]
            )
        } else {
            names.join(" → ")
        }
    }

    /// Scan one file's code tokens for call sites and add edges from the
    /// owning fn to every resolution candidate.
    fn extract_calls(&mut self, fi: usize, pf: &ParsedFile) {
        let code = &pf.code;
        let text = |k: usize| code.get(k).map(|t| t.text(&pf.src)).unwrap_or("");
        let is_ident = |k: usize| code.get(k).is_some_and(|t| t.kind == TokenKind::Ident);

        let mut edges: Vec<(usize, usize)> = Vec::new();
        for i in 0..code.len() {
            if !is_ident(i) || is_call_keyword(text(i)) {
                continue;
            }
            // `fn name(` is a definition, not a call.
            if i > 0 && text(i - 1) == "fn" {
                continue;
            }
            // The call operator: `(` directly, or through a turbofish
            // `name::<T>(`. A following `!` is a macro, not a fn call.
            let open = if text(i + 1) == "(" {
                Some(i + 1)
            } else if text(i + 1) == "::" && text(i + 2) == "<" {
                skip_angles(&pf.src, code, i + 2).filter(|&j| text(j) == "(")
            } else {
                None
            };
            let Some(_) = open else { continue };
            let Some(owner) = self.owner_of(fi, i) else { continue };

            let name = text(i);
            let prev = if i > 0 { text(i - 1) } else { "" };
            let candidates: Vec<usize> = if prev == "::" && i >= 2 && is_ident(i - 2) {
                let type_like = text(i - 2).starts_with(|c: char| c.is_ascii_uppercase());
                let qualifier = if text(i - 2) == "Self" {
                    self.fns[owner].impl_target.clone()
                } else {
                    Some(text(i - 2).to_string())
                };
                let narrowed: Vec<usize> = self
                    .by_name
                    .get(name)
                    .map(|v| {
                        v.iter()
                            .copied()
                            .filter(|&f| self.fns[f].impl_target == qualifier)
                            .collect()
                    })
                    .unwrap_or_default();
                if narrowed.is_empty() && type_like {
                    // `Vec::new(…)`, `String::from(…)`: a type-like
                    // qualifier with no workspace impl is std/external —
                    // resolving name-wide would connect everything.
                    Vec::new()
                } else if narrowed.is_empty() {
                    // Module-path call (`math::dot(…)`): fall back wide.
                    self.by_name.get(name).cloned().unwrap_or_default()
                } else {
                    narrowed
                }
            } else {
                // Free call or `.method(` — resolve by name alone.
                self.by_name.get(name).cloned().unwrap_or_default()
            };
            for c in candidates {
                edges.push((owner, c));
            }
        }
        for (from, to) in edges {
            self.fns[from].callees.push(to);
        }
    }
}

/// Given `code[open] == "<"`, return the index just past the matching
/// `>` (None when unbalanced). `>>`/`<<` count double.
fn skip_angles(src: &str, code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut j = open;
    while j < code.len() {
        match code[j].text(src) {
            "<" => depth += 1,
            "<<" => depth += 2,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            ";" | "{" => return None,
            _ => {}
        }
        if depth <= 0 {
            return Some(j + 1);
        }
        j += 1;
    }
    None
}

/// Identifiers that look like calls syntactically but never are.
fn is_call_keyword(word: &str) -> bool {
    matches!(
        word,
        "if" | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "move"
            | "in"
            | "as"
            | "unsafe"
            | "else"
            | "break"
            | "continue"
            | "let"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "dyn"
            | "impl"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "fn"
            | "crate"
            | "super"
            | "static"
            | "const"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "extern"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
            | "assert"
            | "debug_assert"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(files: &[(&str, &str)]) -> Vec<ParsedFile> {
        files
            .iter()
            .map(|(path, src)| {
                let ctx = crate::context_for(std::path::Path::new(path)).unwrap_or(FileContext {
                    crate_name: "test".to_string(),
                    is_binary: false,
                    is_shim: false,
                });
                ParsedFile::parse((*path).to_string(), (*src).to_string(), ctx)
            })
            .collect()
    }

    fn fn_idx(g: &CallGraph, name: &str) -> usize {
        (0..g.fns.len()).find(|&i| g.fns[i].name == name).unwrap()
    }

    #[test]
    fn cross_file_free_fn_edge_and_reachability() {
        let files = parse_all(&[
            ("crates/sph-core/src/a.rs", "pub fn compute_density() { helper(); }"),
            ("crates/sph-core/src/b.rs", "pub fn helper() { leaf(); }\nfn leaf() {}"),
        ]);
        let g = CallGraph::build(&files);
        let seeds = g.select(|f| f.name == "compute_density");
        let reach = g.reachable(&seeds);
        assert!(reach[fn_idx(&g, "helper")].is_some());
        assert!(reach[fn_idx(&g, "leaf")].is_some());
        let chain = g.chain(&reach, fn_idx(&g, "leaf"));
        assert_eq!(chain, "compute_density → helper → leaf");
    }

    #[test]
    fn method_calls_resolve_by_name_over_approximately() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_forces(g: &G) { g.scan(); }\n\
             struct G; impl G { pub fn scan(&self) {} }\n\
             struct H; impl H { pub fn scan(&self) {} }",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_forces"));
        // Both `scan` impls are reachable: ambiguity over-approximates.
        let scans: Vec<usize> = (0..g.fns.len()).filter(|&i| g.fns[i].name == "scan").collect();
        assert_eq!(scans.len(), 2);
        assert!(scans.iter().all(|&s| reach[s].is_some()));
    }

    #[test]
    fn qualified_calls_narrow_by_impl_target() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_forces() { G::scan(); }\n\
             struct G; impl G { pub fn scan(&self) {} }\n\
             struct H; impl H { pub fn scan(&self) {} }",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_forces"));
        let g_scan = (0..g.fns.len())
            .find(|&i| g.fns[i].name == "scan" && g.fns[i].impl_target.as_deref() == Some("G"))
            .unwrap();
        let h_scan = (0..g.fns.len())
            .find(|&i| g.fns[i].name == "scan" && g.fns[i].impl_target.as_deref() == Some("H"))
            .unwrap();
        assert!(reach[g_scan].is_some());
        assert!(reach[h_scan].is_none());
    }

    #[test]
    fn external_type_constructors_resolve_to_nothing() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_density() { let v = Vec::new(); }\n\
             struct G; impl G { pub fn new() -> G { G } }",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_density"));
        // `Vec` has no workspace impl: the call must NOT leak to `G::new`.
        assert!(reach[fn_idx(&g, "new")].is_none());
    }

    #[test]
    fn shim_fns_are_call_graph_barriers() {
        let files = parse_all(&[
            (
                "crates/shims/rayon/src/lib.rs",
                "pub fn run_tasks() { plumbing(); }\npub fn plumbing() {}",
            ),
            ("crates/sph-core/src/a.rs", "pub fn compute_density() { run_tasks(); }"),
        ]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_density"));
        assert!(reach[fn_idx(&g, "run_tasks")].is_some(), "edges lead into the shim");
        assert!(reach[fn_idx(&g, "plumbing")].is_none(), "but never out of it");
    }

    #[test]
    fn test_fns_are_not_resolution_targets() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_density() { helper(); }\n\
             #[cfg(test)] mod tests { pub fn helper() { super::leaky(); } }\n\
             pub fn leaky() {}",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_density"));
        assert!(reach[fn_idx(&g, "leaky")].is_none(), "test helper must not bridge");
    }

    #[test]
    fn macro_names_are_not_calls() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_density() { trace!(\"x\"); }\npub fn trace() {}",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_density"));
        assert!(reach[fn_idx(&g, "trace")].is_none());
    }

    #[test]
    fn turbofish_calls_resolve() {
        let files = parse_all(&[(
            "crates/sph-core/src/a.rs",
            "pub fn compute_density() { parse::<f64>(); }\npub fn parse() {}",
        )]);
        let g = CallGraph::build(&files);
        let reach = g.reachable(&g.select(|f| f.name == "compute_density"));
        assert!(reach[fn_idx(&g, "parse")].is_some());
    }
}
