//! `sph-lint` — workspace static analysis for the determinism & hot-path
//! contracts.
//!
//! The repo's core claim is that every trajectory is bit-identical across
//! `SPH_THREADS` × nranks × neighbor backends. That contract used to live
//! in reviewers' heads and a determinism test suite that can tell *that* a
//! PR broke it but not *why*. This crate enforces it at the source level,
//! in two layers:
//!
//! 1. **Token rules** (R1–R5): a hand-rolled lexer ([`lexer`]) feeds a
//!    rule engine ([`rules`]) that matches contract violations per file.
//! 2. **Call-graph rules** (R6–R8): a lightweight item parser ([`items`])
//!    recovers `fn`/`impl`/`mod`/`use` structure, a workspace symbol
//!    table and conservative call graph ([`graph`]) resolves calls by
//!    name (over-approximating on ambiguity), and the [`semantic`] pass
//!    asks reachability questions — is this allocation in a function
//!    reachable from the kernel passes? — instead of trusting crate-name
//!    whitelists.
//!
//! The sweep covers every `crates/*/src` file, the root facade `src/`,
//! `examples/`, and `crates/*/benches` (binary contexts get the reduced
//! rule set; shims answer only for the `unsafe` rule). [`report`] renders
//! the `--json` schema and the ratchet baseline the CI gate diffs against.
//!
//! See [`rules`] for the rule catalogue and the inline-suppression syntax,
//! and the README "Static analysis" section for the workflow. The
//! `sph_lint` binary (`cargo run -p sph-lint -- --workspace`) and the
//! tier-1 test `tests/workspace_clean.rs` are thin wrappers over
//! [`lint_workspace`].

pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod semantic;

pub use graph::{CallGraph, ParsedFile};
pub use rules::{Diagnostic, FileContext, Rule};
pub use semantic::{HOT_PATH_SEEDS, TRAJECTORY_STEP_TYPES};

use std::fmt;
use std::path::{Path, PathBuf};

/// A diagnostic tied to the file it was found in, ready to print.
#[derive(Debug, Clone)]
pub struct FileDiagnostic {
    /// Path relative to the workspace root (stable across machines).
    pub path: String,
    pub diagnostic: Diagnostic,
    /// The trimmed source line, for self-contained reports.
    pub snippet: String,
}

impl fmt::Display for FileDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = &self.diagnostic;
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}\n    | {}",
            self.path,
            d.line,
            d.col,
            d.rule.id(),
            d.rule.slug(),
            d.message,
            self.snippet
        )
    }
}

/// Errors from walking the workspace (I/O, not lint findings).
#[derive(Debug)]
pub enum LintError {
    /// `root` does not look like the workspace (no `crates/` directory).
    NotAWorkspace(PathBuf),
    /// Reading a directory or file failed.
    Io(PathBuf, std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::NotAWorkspace(p) => {
                write!(f, "{} has no crates/ directory; pass the workspace root", p.display())
            }
            LintError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Lint a single source string under an explicit context with the
/// token-level rules (R1–R5 plus the suppression meta rules). The
/// call-graph rules need a workspace view — use [`lint_sources`].
pub fn lint_source(src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    rules::lint_tokens(src, &tokens, ctx)
}

/// Lint a set of `(workspace-relative path, source)` pairs as one
/// workspace: the full pipeline including the call graph and R6–R8.
/// Paths [`context_for`] does not recognise are skipped. This is what
/// [`lint_workspace`] runs after reading files, and what the semantic
/// fixture tests drive directly.
pub fn lint_sources(sources: Vec<(String, String)>) -> Vec<FileDiagnostic> {
    let parsed: Vec<ParsedFile> = sources
        .into_iter()
        .filter_map(|(path, src)| {
            let ctx = context_for(Path::new(&path))?;
            Some(ParsedFile::parse(path, src, ctx))
        })
        .collect();
    lint_parsed(&parsed)
}

/// The workspace pipeline over parsed files: call graph → semantic rules
/// → per-file merge through suppression matching.
fn lint_parsed(files: &[ParsedFile]) -> Vec<FileDiagnostic> {
    let graph = CallGraph::build(files);
    let semantic = semantic::check(files, &graph);
    let mut out = Vec::new();
    for (pf, extra) in files.iter().zip(semantic) {
        let diags = rules::lint_tokens_merged(
            &pf.src,
            &pf.tokens,
            &pf.code,
            &pf.test_ranges,
            &pf.ctx,
            extra,
        );
        for diagnostic in diags {
            let snippet = pf
                .src
                .lines()
                .nth(diagnostic.line.saturating_sub(1) as usize)
                .unwrap_or("")
                .trim()
                .to_string();
            out.push(FileDiagnostic { path: pf.rel_path.clone(), diagnostic, snippet });
        }
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.diagnostic.line, a.diagnostic.col, a.diagnostic.rule).cmp(&(
            b.path.as_str(),
            b.diagnostic.line,
            b.diagnostic.col,
            b.diagnostic.rule,
        ))
    });
    out
}

/// Classify a workspace-relative path into the [`FileContext`] that decides
/// which rules apply. Returns `None` for files sph-lint does not check
/// (e.g. shim test directories or non-Rust files).
pub fn context_for(rel_path: &Path) -> Option<FileContext> {
    if rel_path.extension().and_then(|e| e.to_str()) != Some("rs") {
        return None;
    }
    let comps: Vec<&str> = rel_path.iter().filter_map(|c| c.to_str()).collect();
    let is_binary = comps.contains(&"bin") || comps.last() == Some(&"main.rs");
    match comps.as_slice() {
        // crates/shims/<name>/src/…
        ["crates", "shims", name, "src", ..] => {
            Some(FileContext { crate_name: format!("shims/{name}"), is_binary, is_shim: true })
        }
        // crates/sph-<name>/src/…
        ["crates", name, "src", ..] => {
            Some(FileContext { crate_name: (*name).to_string(), is_binary, is_shim: false })
        }
        // Crate example/bench targets compile as their own binaries.
        ["crates", name, "examples" | "benches", ..] => {
            Some(FileContext { crate_name: (*name).to_string(), is_binary: true, is_shim: false })
        }
        // The root facade crate's src/.
        ["src", ..] => {
            Some(FileContext { crate_name: "sph-exa-repro".to_string(), is_binary, is_shim: false })
        }
        // Workspace-level examples run against the facade; binaries.
        ["examples", ..] => Some(FileContext {
            crate_name: "sph-exa-repro".to_string(),
            is_binary: true,
            is_shim: false,
        }),
        _ => None,
    }
}

/// Walk the workspace at `root` and lint every checked file. Results are
/// sorted by (path, line, col) so output is deterministic.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileDiagnostic>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for dir in crate_src_dirs(root)? {
        collect_rs_files(&dir, &mut files)?;
    }
    files.sort();

    let mut parsed: Vec<ParsedFile> = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let Some(ctx) = context_for(&rel) else { continue };
        let src = std::fs::read_to_string(&file).map_err(|e| LintError::Io(file.clone(), e))?;
        parsed.push(ParsedFile::parse(rel_str(&rel), src, ctx));
    }
    Ok(lint_parsed(&parsed))
}

/// The directories sph-lint walks: every `crates/*/src` (shims are nested
/// one deeper) plus each crate's `examples/` and `benches/`, plus the
/// root facade's `src/` and the workspace-level `examples/`.
fn crate_src_dirs(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut dirs = vec![root.join("src"), root.join("examples")];
    let crates_dir = root.join("crates");
    for entry in read_dir_sorted(&crates_dir)? {
        if entry.file_name().to_string_lossy() == "shims" {
            for shim in read_dir_sorted(&entry.path())? {
                let src = shim.path().join("src");
                if src.is_dir() {
                    dirs.push(src);
                }
            }
        } else {
            for sub in ["src", "examples", "benches"] {
                let dir = entry.path().join(sub);
                if dir.is_dir() {
                    dirs.push(dir);
                }
            }
        }
    }
    dirs.retain(|d| d.is_dir());
    Ok(dirs)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<std::fs::DirEntry>, LintError> {
    let iter = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut entries = Vec::new();
    for entry in iter {
        entries.push(entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?);
    }
    entries.sort_by_key(|e| e.file_name());
    Ok(entries)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for entry in read_dir_sorted(dir)? {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render a relative path with `/` separators regardless of platform.
fn rel_str(rel: &Path) -> String {
    rel.iter().filter_map(|c| c.to_str()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_classification() {
        let lib = context_for(Path::new("crates/sph-core/src/density.rs")).unwrap();
        assert_eq!(lib.crate_name, "sph-core");
        assert!(!lib.is_binary && !lib.is_shim);

        let bin = context_for(Path::new("crates/sph-bench/src/bin/miniapp.rs")).unwrap();
        assert!(bin.is_binary);

        let main = context_for(Path::new("crates/sph-lint/src/main.rs")).unwrap();
        assert!(main.is_binary);

        let shim = context_for(Path::new("crates/shims/rayon/src/lib.rs")).unwrap();
        assert!(shim.is_shim);
        assert_eq!(shim.crate_name, "shims/rayon");

        let facade = context_for(Path::new("src/lib.rs")).unwrap();
        assert_eq!(facade.crate_name, "sph-exa-repro");

        let example = context_for(Path::new("examples/quickstart.rs")).unwrap();
        assert!(example.is_binary && !example.is_shim);
        assert_eq!(example.crate_name, "sph-exa-repro");

        let bench =
            context_for(Path::new("crates/sph-bench/benches/neighbor_pipeline.rs")).unwrap();
        assert!(bench.is_binary && !bench.is_shim);
        assert_eq!(bench.crate_name, "sph-bench");

        let crate_example = context_for(Path::new("crates/sph-ft/examples/demo.rs")).unwrap();
        assert!(crate_example.is_binary);

        assert!(context_for(Path::new("README.md")).is_none());
        assert!(context_for(Path::new("tests/determinism.rs")).is_none());
    }
}
