//! `sph_lint` — CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p sph-lint -- --workspace           # lint the whole workspace
//! cargo run -p sph-lint -- --root /path/to/repo  # explicit root
//! cargo run -p sph-lint -- --list-rules          # rule catalogue
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed diagnostics, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use sph_lint::{lint_workspace, Rule};

const USAGE: &str = "usage: sph_lint [--workspace] [--root <dir>] [--list-rules]

Lints every crates/sph-*/src file (plus the root facade; shims for the
unsafe rule) against the determinism & hot-path contracts. Suppress a
finding inline with:

    // sph-lint: allow(rule-slug) — <justification>

Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the default (and only) scan mode; accepted for
            // self-describing CI invocations.
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}  {:<22} {}", rule.id(), rule.slug(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(default_root);
    let diagnostics = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sph-lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!("sph-lint: workspace clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!("sph-lint: {} diagnostic(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

/// Under `cargo run` the manifest dir is `crates/sph-lint`, two levels below
/// the workspace root; otherwise fall back to the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest.ancestors().nth(2).map(PathBuf::from).unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}
