//! `sph_lint` — CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p sph-lint -- --workspace                  # lint the whole workspace
//! cargo run -p sph-lint -- --root /path/to/repo         # explicit root
//! cargo run -p sph-lint -- --list-rules                 # rule catalogue
//! cargo run -p sph-lint -- --workspace --json out.json  # machine-readable report
//! cargo run -p sph-lint -- --workspace --baseline lint_baseline.json
//! ```
//!
//! Exit codes: 0 = clean, 1 = unsuppressed diagnostics (or a ratchet
//! regression / non-empty baseline under `--deny-baseline`), 2 = usage or
//! I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use sph_lint::report::{ratchet_diff, render_baseline, render_report, Baseline};
use sph_lint::{lint_workspace, Rule};

const USAGE: &str = "usage: sph_lint [--workspace] [--root <dir>] [--list-rules]
                [--json <path>] [--baseline <path>] [--write-baseline <path>]
                [--deny-baseline]

Lints every crates/*/src file (plus the root facade, examples/ and
benches/; shims for the unsafe rule) against the determinism & hot-path
contracts. Suppress a finding inline with:

    // sph-lint: allow(rule-slug) — <justification>

  --json <path>            write the findings report as JSON
  --baseline <path>        ratchet gate: fail only on findings NOT in the
                           baseline; warn on stale entries
  --write-baseline <path>  write current findings as a new baseline
  --deny-baseline          with --baseline: also fail if the baseline file
                           itself is non-empty (zero-grandfathering gate)

Exit codes: 0 clean, 1 diagnostics found, 2 usage or I/O error.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut deny_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the default (and only) scan mode; accepted for
            // self-describing CI invocations.
            "--workspace" => {}
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory argument"),
            },
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage_error("--json needs a file argument"),
            },
            "--baseline" => match args.next() {
                Some(path) => baseline_path = Some(PathBuf::from(path)),
                None => return usage_error("--baseline needs a file argument"),
            },
            "--write-baseline" => match args.next() {
                Some(path) => write_baseline = Some(PathBuf::from(path)),
                None => return usage_error("--write-baseline needs a file argument"),
            },
            "--deny-baseline" => deny_baseline = true,
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}  {:<22} {}", rule.id(), rule.slug(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let diagnostics = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("sph-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, render_report(&diagnostics)) {
            eprintln!("sph-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("sph-lint: wrote report to {}", path.display());
    }
    if let Some(path) = &write_baseline {
        if let Err(e) = std::fs::write(path, render_baseline(&diagnostics)) {
            eprintln!("sph-lint: {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("sph-lint: wrote baseline ({} entries) to {}", diagnostics.len(), path.display());
    }

    // Ratchet mode: only findings NOT absorbed by the baseline fail.
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("sph-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sph-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let diff = ratchet_diff(&baseline, &diagnostics);
        for &i in &diff.new {
            println!("{}", diagnostics[i]);
        }
        for (path, slug, snippet) in &diff.stale {
            println!("sph-lint: stale baseline entry {path} [{slug}] `{snippet}` — ratchet it out");
        }
        let mut failed = false;
        if !diff.new.is_empty() {
            println!("sph-lint: {} new finding(s) not covered by the baseline", diff.new.len());
            failed = true;
        }
        if deny_baseline && !baseline.is_empty() {
            println!(
                "sph-lint: baseline {} has {} grandfathered entries; the gate requires zero",
                path.display(),
                baseline.len()
            );
            failed = true;
        }
        if failed {
            return ExitCode::FAILURE;
        }
        println!(
            "sph-lint: workspace matches baseline ({} finding(s), {} grandfathered)",
            diagnostics.len(),
            baseline.len()
        );
        return ExitCode::SUCCESS;
    }

    for d in &diagnostics {
        println!("{d}");
    }
    if diagnostics.is_empty() {
        println!("sph-lint: workspace clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!("sph-lint: {} diagnostic(s)", diagnostics.len());
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Under `cargo run` the manifest dir is `crates/sph-lint`, two levels below
/// the workspace root; otherwise fall back to the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest.ancestors().nth(2).map(PathBuf::from).unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}
