//! The rule engine: matches the determinism & hot-path contracts against a
//! token stream and resolves inline suppressions.
//!
//! # Rule catalogue
//!
//! | id | slug                  | contract it enforces |
//! |----|-----------------------|----------------------|
//! | R1 | `hash-container`      | no `HashMap`/`HashSet` in sph code — iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or a sorted `Vec` |
//! | R2 | `raw-accumulation`    | no bare `+=`/`.sum()`/additive `.fold()` accumulation loops in the hot-path crates (sph-core, sph-math, sph-tree) — route through `KahanAccumulator` or the fixed-chunk ordered-reduce helpers |
//! | R3 | `panic-path`          | no `unwrap()`/`expect()`/`panic!` in library code paths — return typed `Result`s |
//! | R4 | `undocumented-unsafe` | every `unsafe` needs an adjacent `// SAFETY:` comment (or a `# Safety` doc section) |
//! | R5 | `wall-clock`          | no `Instant::now`/`SystemTime::now`/`thread::spawn` outside the rayon shim, sph-profiler and sph-serve — wall-clock reads in compute passes break replay determinism |
//! | R6 | `hot-alloc`           | no `Vec`/`Box`/`String`/`collect` allocation in any fn reachable from the kernel-pass seed set (call-graph rule; see [`crate::semantic`]) |
//! | R7 | `reduce-taint`        | interprocedural R2: bare float `+=`/`.sum()`/`fold` in any fn reachable from a trajectory-feeding path, whatever crate it lives in |
//! | R8 | `env-determinism`     | no env/thread-count reads outside the rayon shim, sph-serve and binary CLI surfaces — values that shape physics state must come from explicit config |
//!
//! Two meta rules police the suppression mechanism itself and cannot be
//! suppressed: S1 `unjustified-suppression` (an `allow` without a written
//! justification, or naming an unknown rule) and S2 `unused-suppression`
//! (an `allow` that matched no diagnostic on its line).
//!
//! # Suppressions
//!
//! ```text
//! // sph-lint: allow(rule-slug[, rule-slug…]) — <mandatory justification>
//! ```
//!
//! A trailing comment suppresses its own line; a comment alone on a line
//! suppresses the next line of code. The justification (after `—`, `-`, or
//! `:`) must be at least [`MIN_JUSTIFICATION`] characters of prose.
//!
//! # Contexts
//!
//! `#[cfg(test)]` modules and `#[test]` functions are exempt from all
//! rules. Binaries (`src/bin/`, `src/main.rs`) are CLI surface, not library
//! paths: only R1 and R4 apply. Shim crates mirror external crates'
//! internals and only answer for R4.

use crate::lexer::{Token, TokenKind};

/// Minimum length of the prose justification a suppression must carry.
pub const MIN_JUSTIFICATION: usize = 10;

/// Crates whose accumulation loops are hot-path (rule R2).
pub const HOT_PATH_CRATES: &[&str] = &["sph-core", "sph-math", "sph-tree"];

/// Crates allowed to read the wall clock (rule R5). The shims are exempt
/// wholesale via [`FileContext::is_shim`]; this lists first-party crates:
/// the profiler (timing IS its job) and the server (request latency and
/// worker threads live outside any physics trajectory — trajectory values
/// are produced by the deterministic crates it drives).
pub const WALL_CLOCK_CRATES: &[&str] = &["sph-profiler", "sph-serve"];

/// Crates allowed to read the process environment (rule R8) from library
/// code. Binaries are exempt via [`FileContext::is_binary`]; sph-serve's
/// library half owns operational surface (bind address, state directory)
/// that must never shape physics state — the determinism argument is that
/// its job results are produced by crates where R8 still applies.
pub const ENV_READ_CRATES: &[&str] = &["sph-serve"];

/// The enforced rules. `S1`/`S2` police the suppression mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: `HashMap`/`HashSet` — nondeterministic iteration order.
    HashContainer,
    /// R2: bare `+=`/`.sum()` accumulation in hot-path loops.
    RawAccumulation,
    /// R3: `unwrap()`/`expect()`/`panic!` in library code paths.
    PanicPath,
    /// R4: `unsafe` without an adjacent `// SAFETY:` justification.
    UndocumentedUnsafe,
    /// R5: wall-clock reads / thread spawns outside the sanctioned crates.
    WallClock,
    /// R6: allocation in a fn reachable from the kernel-pass seeds.
    HotAlloc,
    /// R7: interprocedural R2 — raw accumulation reachable from a
    /// trajectory-feeding path, whatever crate it lives in.
    ReduceTaint,
    /// R8: env/thread-count reads outside the shim / binary surfaces.
    EnvDeterminism,
    /// S1: suppression without a written justification (or unknown rule).
    UnjustifiedSuppression,
    /// S2: suppression that matched no diagnostic.
    UnusedSuppression,
}

impl Rule {
    pub const ALL: [Rule; 8] = [
        Rule::HashContainer,
        Rule::RawAccumulation,
        Rule::PanicPath,
        Rule::UndocumentedUnsafe,
        Rule::WallClock,
        Rule::HotAlloc,
        Rule::ReduceTaint,
        Rule::EnvDeterminism,
    ];

    /// Short id (`R1`…`R8`, `S1`/`S2`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashContainer => "R1",
            Rule::RawAccumulation => "R2",
            Rule::PanicPath => "R3",
            Rule::UndocumentedUnsafe => "R4",
            Rule::WallClock => "R5",
            Rule::HotAlloc => "R6",
            Rule::ReduceTaint => "R7",
            Rule::EnvDeterminism => "R8",
            Rule::UnjustifiedSuppression => "S1",
            Rule::UnusedSuppression => "S2",
        }
    }

    /// The slug used in `sph-lint: allow(…)` comments.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::HashContainer => "hash-container",
            Rule::RawAccumulation => "raw-accumulation",
            Rule::PanicPath => "panic-path",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
            Rule::WallClock => "wall-clock",
            Rule::HotAlloc => "hot-alloc",
            Rule::ReduceTaint => "reduce-taint",
            Rule::EnvDeterminism => "env-determinism",
            Rule::UnjustifiedSuppression => "unjustified-suppression",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parse a slug from a suppression comment. Meta rules cannot be
    /// suppressed, so they are not recognised here.
    pub fn from_slug(slug: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.slug() == slug)
    }

    /// One-line description for `--list-rules` and the README catalogue.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::HashContainer => {
                "HashMap/HashSet iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet or a sorted Vec"
            }
            Rule::RawAccumulation => {
                "bare floating-point accumulation in a hot-path loop; route through \
                 KahanAccumulator or the fixed-chunk ordered-reduce helpers"
            }
            Rule::PanicPath => {
                "unwrap()/expect()/panic! in a library code path; return a typed Result"
            }
            Rule::UndocumentedUnsafe => {
                "unsafe without an adjacent // SAFETY: comment (or # Safety doc section)"
            }
            Rule::WallClock => {
                "wall-clock read or thread spawn outside the rayon shim / sph-profiler / \
                 sph-serve; nondeterministic inputs break replay determinism"
            }
            Rule::HotAlloc => {
                "allocation (Vec/Box/String/collect) in a function reachable from the \
                 kernel-pass seed set; use per-chunk scratch or pre-sized buffers"
            }
            Rule::ReduceTaint => {
                "bare floating-point accumulation reachable from a trajectory-feeding \
                 path; route through KahanAccumulator or the ordered-reduce helpers"
            }
            Rule::EnvDeterminism => {
                "env/thread-count read in library code outside the sph-serve operational \
                 surface; values that can shape physics state must come from explicit \
                 config, not the process environment"
            }
            Rule::UnjustifiedSuppression => "sph-lint suppression without a written justification",
            Rule::UnusedSuppression => "sph-lint suppression that matched no diagnostic",
        }
    }
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`sph-core`, …); `shims/rayon` for shims.
    pub crate_name: String,
    /// Under `src/bin/` or named `main.rs`: CLI surface, not library path.
    pub is_binary: bool,
    /// Under `crates/shims/`: mirrors an external crate's internals.
    pub is_shim: bool,
}

impl FileContext {
    /// Does `rule` apply to files in this context? For the call-graph
    /// rules (R6/R7) this is a necessary precondition only: the semantic
    /// pass additionally requires the containing fn to be reachable from
    /// the relevant seed set.
    pub fn applies(&self, rule: Rule) -> bool {
        if self.is_shim {
            return rule == Rule::UndocumentedUnsafe;
        }
        match rule {
            Rule::HashContainer | Rule::UndocumentedUnsafe => true,
            Rule::RawAccumulation => {
                !self.is_binary && HOT_PATH_CRATES.contains(&self.crate_name.as_str())
            }
            Rule::PanicPath => !self.is_binary,
            Rule::WallClock => {
                !self.is_binary && !WALL_CLOCK_CRATES.contains(&self.crate_name.as_str())
            }
            // Reachability decides, not the crate: binaries included.
            Rule::HotAlloc => true,
            // The hot-path crates already answer to R2 for the same
            // patterns; R7 extends the contract to everything else.
            Rule::ReduceTaint => !HOT_PATH_CRATES.contains(&self.crate_name.as_str()),
            Rule::EnvDeterminism => {
                !self.is_binary && !ENV_READ_CRATES.contains(&self.crate_name.as_str())
            }
            Rule::UnjustifiedSuppression | Rule::UnusedSuppression => true,
        }
    }
}

/// One finding, positioned in a file.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// An `sph-lint: allow(…)` parsed out of a comment.
#[derive(Debug)]
struct Suppression {
    rules: Vec<Rule>,
    /// Slugs that named no known rule (reported as S1).
    unknown: Vec<String>,
    /// Line the comment starts on (for S1/S2 positioning).
    comment_line: u32,
    /// Line of code this suppression covers.
    covers_line: u32,
    justified: bool,
    used: bool,
}

/// Lint one tokenized file with the token-level rules (R1–R5, S1/S2).
/// The call-graph rules need a workspace view; see [`crate::lint_sources`].
pub fn lint_tokens(src: &str, tokens: &[Token], ctx: &FileContext) -> Vec<Diagnostic> {
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).copied().collect();
    let test_ranges = test_item_ranges(src, &code);
    lint_tokens_merged(src, tokens, &code, &test_ranges, ctx, Vec::new())
}

/// The per-file finalizer: token-level violations plus pre-positioned
/// semantic diagnostics (`extra`, already test-filtered), all routed
/// through one suppression-matching pass so R6–R8 answer to the same
/// `sph-lint: allow(…)` grammar — and the same S1/S2 policing — as R1–R5.
pub(crate) fn lint_tokens_merged(
    src: &str,
    tokens: &[Token],
    code: &[Token],
    test_ranges: &[std::ops::Range<usize>],
    ctx: &FileContext,
    extra: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let in_test = |tok: &Token| test_ranges.iter().any(|r| r.contains(&tok.start));

    let mut suppressions = collect_suppressions(src, tokens, &in_test);
    let mut out = Vec::new();

    for v in find_violations(src, code, ctx) {
        let tok = &code[v.token_idx];
        if in_test(tok) {
            continue;
        }
        // R4 is satisfied by evidence, not only by suppression: a
        // `// SAFETY:` comment adjacent to the `unsafe`, or a `# Safety`
        // doc section on the function it belongs to.
        if v.rule == Rule::UndocumentedUnsafe && has_safety_evidence(src, tokens, tok.line) {
            continue;
        }
        let suppressed = suppressions
            .iter_mut()
            .find(|s| s.covers_line == tok.line && s.rules.contains(&v.rule));
        match suppressed {
            Some(s) => s.used = true,
            None => out.push(Diagnostic {
                rule: v.rule,
                line: tok.line,
                col: tok.col,
                message: v.message,
            }),
        }
    }

    for d in extra {
        let suppressed =
            suppressions.iter_mut().find(|s| s.covers_line == d.line && s.rules.contains(&d.rule));
        match suppressed {
            Some(s) => s.used = true,
            None => out.push(d),
        }
    }

    for s in &suppressions {
        if !s.justified {
            out.push(Diagnostic {
                rule: Rule::UnjustifiedSuppression,
                line: s.comment_line,
                col: 1,
                message: "suppression needs a written justification: \
                          `// sph-lint: allow(rule) — <why this is sound>`"
                    .to_string(),
            });
        }
        for slug in &s.unknown {
            out.push(Diagnostic {
                rule: Rule::UnjustifiedSuppression,
                line: s.comment_line,
                col: 1,
                message: format!("suppression names unknown rule `{slug}`"),
            });
        }
        if s.justified && s.unknown.is_empty() && !s.used {
            out.push(Diagnostic {
                rule: Rule::UnusedSuppression,
                line: s.comment_line,
                col: 1,
                message: "suppression matched no diagnostic on its line; remove it".to_string(),
            });
        }
    }

    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

struct Violation {
    rule: Rule,
    token_idx: usize,
    message: String,
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items (body plus attribute).
pub(crate) fn test_item_ranges(src: &str, code: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if is_test_attribute(src, code, i) {
            let start = code[i].start;
            // Skip this attribute and any further ones on the same item.
            let mut j = skip_attribute(src, code, i);
            while j < code.len() && code[j].text(src) == "#" {
                j = skip_attribute(src, code, j);
            }
            // The item ends at the matching `}` of its first block, or at a
            // `;` before any block opens (e.g. `#[cfg(test)] use …;`).
            let mut depth = 0usize;
            while j < code.len() {
                match code[j].text(src) {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let end = if j < code.len() { code[j].end } else { src.len() };
            ranges.push(start..end);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Does `#` at `code[i]` open `#[cfg(test)]` or `#[test]`?
fn is_test_attribute(src: &str, code: &[Token], i: usize) -> bool {
    let text = |k: usize| code.get(k).map(|t| t.text(src)).unwrap_or("");
    text(i) == "#"
        && text(i + 1) == "["
        && ((text(i + 2) == "test" && text(i + 3) == "]")
            || (text(i + 2) == "cfg"
                && text(i + 3) == "("
                && text(i + 4) == "test"
                && text(i + 5) == ")"))
}

/// Given `code[i] == "#"` starting an attribute, return the index just past
/// its closing `]` (bracket-depth aware, so `#[cfg(any(test, foo))]` works).
fn skip_attribute(src: &str, code: &[Token], i: usize) -> usize {
    if code.get(i + 1).map(|t| t.text(src)) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < code.len() {
        match code[j].text(src) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Is there a SAFETY justification near line `line` (where `unsafe` sits)?
///
/// Accepted evidence: a comment containing `SAFETY:` starting at most
/// 6 lines above (multi-line justifications keep the marker on top) or
/// trailing on the same line, or a doc-comment line containing `# Safety`
/// at most 12 lines above (doc sections attach to the `unsafe fn` they
/// document, with the prose in between).
fn has_safety_evidence(src: &str, tokens: &[Token], line: u32) -> bool {
    tokens.iter().any(|t| {
        if !t.is_comment() || t.line > line {
            return false;
        }
        let text = t.text(src);
        let dist = line - t.line;
        (dist <= 6 && text.contains("SAFETY:"))
            || (dist <= 12 && t.kind == TokenKind::DocComment && text.contains("# Safety"))
    })
}

fn collect_suppressions(
    src: &str,
    tokens: &[Token],
    in_test: &dyn Fn(&Token) -> bool,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, tok) in tokens.iter().enumerate() {
        // Suppressions live in plain comments only: doc comments are
        // documentation (they may *describe* the syntax, as this crate's
        // own rustdoc does) and never suppress anything.
        if !tok.is_comment() || tok.kind == TokenKind::DocComment {
            continue;
        }
        let Some(parsed) = parse_suppression(tok.text(src)) else { continue };
        // A trailing comment covers its own line; a standalone comment
        // covers the next code line.
        let standalone = idx == 0 || tokens[idx - 1].line < tok.line;
        let covers_line = if standalone {
            tokens[idx + 1..].iter().find(|t| !t.is_comment()).map(|t| t.line).unwrap_or(tok.line)
        } else {
            tok.line
        };
        // Suppressions inside test items are dead weight; ignore them.
        if in_test(tok) {
            continue;
        }
        out.push(Suppression {
            rules: parsed.0,
            unknown: parsed.1,
            comment_line: tok.line,
            covers_line,
            justified: parsed.2,
            used: false,
        });
    }
    out
}

/// Parse `sph-lint: allow(a, b) — justification` from a comment's text.
/// Returns `(known rules, unknown slugs, justified)`.
fn parse_suppression(comment: &str) -> Option<(Vec<Rule>, Vec<String>, bool)> {
    let marker = "sph-lint:";
    let rest = comment[comment.find(marker)? + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let (list, mut tail) = (&rest[..close], &rest[close + 1..]);

    let mut rules = Vec::new();
    let mut unknown = Vec::new();
    for slug in list.split(',') {
        let slug = slug.trim();
        if slug.is_empty() {
            continue;
        }
        match Rule::from_slug(slug) {
            Some(r) => rules.push(r),
            None => unknown.push(slug.to_string()),
        }
    }

    // Justification: strip separators, then demand real prose.
    tail = tail.trim_start();
    for sep in ["—", "--", "-", ":", ";"] {
        if let Some(stripped) = tail.strip_prefix(sep) {
            tail = stripped;
            break;
        }
    }
    let just = tail.trim().trim_end_matches("*/").trim();
    Some((rules, unknown, just.chars().count() >= MIN_JUSTIFICATION))
}

/// Run the R1–R5 matchers over the code tokens.
fn find_violations(src: &str, code: &[Token], ctx: &FileContext) -> Vec<Violation> {
    let text = |k: usize| code.get(k).map(|t| t.text(src)).unwrap_or("");
    let is_ident = |k: usize| code.get(k).is_some_and(|t| t.kind == TokenKind::Ident);
    let mut out = Vec::new();

    // Loop-body tracking for R2: which brace scopes belong to a
    // `for`/`while`/`loop` body.
    let mut brace_is_loop: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending_loop_kw = false;

    for i in 0..code.len() {
        let t = &code[i];
        let tt = t.text(src);

        match tt {
            "for" | "while" | "loop" if t.kind == TokenKind::Ident => pending_loop_kw = true,
            "{" => {
                brace_is_loop.push(pending_loop_kw);
                if pending_loop_kw {
                    loop_depth += 1;
                }
                pending_loop_kw = false;
            }
            "}" if brace_is_loop.pop() == Some(true) => loop_depth -= 1,
            _ => {}
        }

        // R1: HashMap / HashSet by name.
        if ctx.applies(Rule::HashContainer)
            && t.kind == TokenKind::Ident
            && (tt == "HashMap" || tt == "HashSet")
        {
            out.push(Violation {
                rule: Rule::HashContainer,
                token_idx: i,
                message: format!(
                    "`{tt}` iterates in nondeterministic order; use BTreeMap/BTreeSet or a \
                     sorted Vec"
                ),
            });
        }

        // R2a: statement-level `acc += expr;` inside a loop body, where
        // `acc` is a bare local and the RHS is not the literal `1`
        // (integer counters are idiomatic and order-independent).
        if ctx.applies(Rule::RawAccumulation)
            && loop_depth > 0
            && t.kind == TokenKind::Ident
            && text(i + 1) == "+="
            && (i == 0 || matches!(text(i.wrapping_sub(1)), ";" | "{" | "}"))
            && !(code.get(i + 2).is_some_and(|t| t.kind == TokenKind::NumLit)
                && text(i + 2) == "1"
                && text(i + 3) == ";")
        {
            out.push(Violation {
                rule: Rule::RawAccumulation,
                token_idx: i,
                message: format!(
                    "bare `{tt} += …` accumulation in a hot-path loop; use KahanAccumulator or \
                     the fixed-chunk ordered-reduce helpers (or justify why the order is frozen)"
                ),
            });
        }

        // R2b: iterator `.sum()` / `.sum::<f64>()`.
        if ctx.applies(Rule::RawAccumulation)
            && tt == "."
            && text(i + 1) == "sum"
            && is_ident(i + 1)
            && matches!(text(i + 2), "(" | "::")
        {
            out.push(Violation {
                rule: Rule::RawAccumulation,
                token_idx: i + 1,
                message: "iterator `.sum()` has no compensation and hides the reduction \
                          order; use KahanAccumulator or the ordered-reduce helpers"
                    .to_string(),
            });
        }

        // R2c: additive `.fold(…)` — the same reduction as R2b spelled
        // out. Min/max folds carry no `+` and are order-independent.
        if ctx.applies(Rule::RawAccumulation)
            && tt == "."
            && text(i + 1) == "fold"
            && is_ident(i + 1)
            && text(i + 2) == "("
            && balanced_args_contain_add(src, code, i + 2)
        {
            out.push(Violation {
                rule: Rule::RawAccumulation,
                token_idx: i + 1,
                message: "additive `.fold(…)` accumulates in iterator order with no \
                          compensation; use KahanAccumulator or the ordered-reduce helpers"
                    .to_string(),
            });
        }

        // R3: `.unwrap()` / `.expect(` / `panic!`.
        if ctx.applies(Rule::PanicPath) {
            if tt == "." && matches!(text(i + 1), "unwrap" | "expect") && text(i + 2) == "(" {
                out.push(Violation {
                    rule: Rule::PanicPath,
                    token_idx: i + 1,
                    message: format!(
                        "`.{}()` aborts the process on the error path; return a typed Result \
                         (or justify why the invariant is local and checked)",
                        text(i + 1)
                    ),
                });
            }
            if t.kind == TokenKind::Ident && tt == "panic" && text(i + 1) == "!" {
                out.push(Violation {
                    rule: Rule::PanicPath,
                    token_idx: i,
                    message: "`panic!` in a library code path; return a typed Result".to_string(),
                });
            }
        }

        // R4: `unsafe` without adjacent SAFETY justification.
        if ctx.applies(Rule::UndocumentedUnsafe) && t.kind == TokenKind::Ident && tt == "unsafe" {
            // `unsafe` inside a trait bound position (`unsafe fn` pointer
            // types etc.) still deserves the comment; no exceptions.
            out.push(Violation {
                rule: Rule::UndocumentedUnsafe,
                token_idx: i,
                message: "`unsafe` without an adjacent `// SAFETY:` comment stating the \
                          invariants that make it sound"
                    .to_string(),
            });
        }

        // R5: wall-clock reads and ad-hoc threads.
        if ctx.applies(Rule::WallClock) && t.kind == TokenKind::Ident {
            let pat = match (tt, text(i + 1), text(i + 2)) {
                ("Instant", "::", "now") => Some("Instant::now"),
                ("SystemTime", "::", "now") => Some("SystemTime::now"),
                ("thread", "::", "spawn") => Some("thread::spawn"),
                _ => None,
            };
            if let Some(p) = pat {
                out.push(Violation {
                    rule: Rule::WallClock,
                    token_idx: i,
                    message: format!(
                        "`{p}` outside the rayon shim / sph-profiler; wall-clock inputs in \
                         compute passes break replay determinism"
                    ),
                });
            }
        }
    }
    out
}

/// Do the balanced arguments of the call whose `(` sits at `open` contain
/// an additive operator? Shared by R2c and R7's fold matcher.
pub(crate) fn balanced_args_contain_add(src: &str, code: &[Token], open: usize) -> bool {
    let mut depth = 0isize;
    let mut k = open;
    while k < code.len() {
        match code[k].text(src) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth <= 0 {
                    return false;
                }
            }
            "+" | "+=" => return true,
            _ => {}
        }
        k += 1;
    }
    false
}
