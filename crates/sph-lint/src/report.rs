//! Machine-readable output: the `--json` report and the ratchet baseline.
//!
//! sph-lint keeps its zero-dependency contract (it must keep working when
//! the workspace it checks is broken), so both the JSON writer and the
//! minimal parser the baseline needs are hand-rolled here.
//!
//! # Report schema (`--json`)
//!
//! ```json
//! {
//!   "version": 2,
//!   "rules":    [ { "id": "R6", "slug": "hot-alloc", "description": "…" }, … ],
//!   "findings": [ { "path": "crates/sph-core/src/density.rs", "line": 41,
//!                   "col": 9, "id": "R6", "slug": "hot-alloc",
//!                   "message": "…", "snippet": "…" }, … ],
//!   "total": 0
//! }
//! ```
//!
//! # Ratchet baseline (`lint_baseline.json`)
//!
//! A multiset of `{path, slug, snippet}` keys. Line numbers are deliberately
//! absent: the baseline must survive unrelated edits above a finding. The
//! gate logic ([`ratchet_diff`]) fails on any finding not covered by the
//! baseline (regressions) and warns on baseline entries that no longer
//! match (stale — ratchet the file down). The repo's committed baseline is
//! **empty** and the CI gate keeps it that way; the mechanism exists so a
//! future rule can land before its last finding is burned down, without
//! going silent on new code.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::rules::Rule;
use crate::FileDiagnostic;

/// Report schema version.
pub const REPORT_VERSION: u64 = 2;

/// Render the full `--json` report.
pub fn render_report(diags: &[FileDiagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": ");
    let _ = write!(s, "{REPORT_VERSION}");
    s.push_str(",\n  \"rules\": [\n");
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"id\": {}, \"slug\": {}, \"description\": {} }}",
            json_str(rule.id()),
            json_str(rule.slug()),
            json_str(rule.describe())
        );
        s.push_str(if i + 1 < Rule::ALL.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"path\": {}, \"line\": {}, \"col\": {}, \"id\": {}, \"slug\": {}, \
             \"message\": {}, \"snippet\": {} }}",
            json_str(&d.path),
            d.diagnostic.line,
            d.diagnostic.col,
            json_str(d.diagnostic.rule.id()),
            json_str(d.diagnostic.rule.slug()),
            json_str(&d.diagnostic.message),
            json_str(&d.snippet)
        );
        s.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    let _ = write!(s, "  ],\n  \"total\": {}\n}}\n", diags.len());
    s
}

/// Render the current findings as a baseline file (`--write-baseline`).
pub fn render_baseline(diags: &[FileDiagnostic]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\n  \"version\": {REPORT_VERSION},\n  \"entries\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"path\": {}, \"slug\": {}, \"snippet\": {} }}",
            json_str(&d.path),
            json_str(d.diagnostic.rule.slug()),
            json_str(d.snippet.trim())
        );
        s.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One grandfathered finding: `(path, rule slug, trimmed snippet)`.
pub type BaselineKey = (String, String, String);

/// The parsed ratchet baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineKey>,
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Parse a baseline file. Errors carry a byte offset for context.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = parse_json(text)?;
        let obj = value.as_obj().ok_or("baseline: top level must be an object")?;
        let mut entries = Vec::new();
        let Some(list) = obj.iter().find(|(k, _)| k == "entries").map(|(_, v)| v) else {
            return Ok(Baseline { entries });
        };
        let arr = list.as_arr().ok_or("baseline: \"entries\" must be an array")?;
        for (i, e) in arr.iter().enumerate() {
            let eobj = e.as_obj().ok_or_else(|| format!("baseline: entry {i} not an object"))?;
            let field = |name: &str| -> Result<String, String> {
                eobj.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: entry {i} missing string \"{name}\""))
            };
            entries.push((field("path")?, field("slug")?, field("snippet")?));
        }
        Ok(Baseline { entries })
    }
}

/// Result of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// Indices (into the findings slice) not covered by the baseline —
    /// these fail the gate.
    pub new: Vec<usize>,
    /// Baseline entries that matched nothing — stale; warn and ratchet.
    pub stale: Vec<BaselineKey>,
}

/// Multiset diff: each baseline entry absorbs at most one identical
/// finding; everything left on either side is reported.
pub fn ratchet_diff(baseline: &Baseline, diags: &[FileDiagnostic]) -> RatchetDiff {
    let mut budget: BTreeMap<&BaselineKey, usize> = BTreeMap::new();
    for key in &baseline.entries {
        *budget.entry(key).or_insert(0) += 1;
    }
    let mut diff = RatchetDiff::default();
    for (i, d) in diags.iter().enumerate() {
        let key: BaselineKey =
            (d.path.clone(), d.diagnostic.rule.slug().to_string(), d.snippet.trim().to_string());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => diff.new.push(i),
        }
    }
    for (key, n) in budget {
        for _ in 0..n {
            diff.stale.push(key.clone());
        }
    }
    diff
}

/// JSON-escape a string (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value — just enough for the baseline format.
#[derive(Debug)]
enum Value {
    Null,
    // Payloads are parsed for validation; the baseline only reads strings.
    #[allow(dead_code)]
    Bool(bool),
    #[allow(dead_code)]
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = JsonParser { chars, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("json: trailing content at char {}", p.pos));
    }
    Ok(v)
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, c: char) -> Result<(), String> {
        if self.bump() == Some(c) {
            Ok(())
        } else {
            Err(format!("json: expected '{c}' at char {}", self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect_char(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("json: unexpected input at char {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_char('{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let val = self.value()?;
            out.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(out)),
                _ => return Err(format!("json: expected ',' or '}}' at char {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_char('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(out)),
                _ => return Err(format!("json: expected ',' or ']' at char {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("json: unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("json: bad \\u escape")?;
                            v = v * 16 + d;
                        }
                        // Surrogates degrade to the replacement char; the
                        // baseline never contains them.
                        out.push(char::from_u32(v).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("json: bad escape".to_string()),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("json: bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn fd(path: &str, rule: Rule, line: u32, snippet: &str) -> FileDiagnostic {
        FileDiagnostic {
            path: path.to_string(),
            diagnostic: Diagnostic { rule, line, col: 1, message: "m \"quoted\"".to_string() },
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn report_parses_back_and_counts() {
        let diags = vec![
            fd("a.rs", Rule::HotAlloc, 3, "let v = Vec::new();"),
            fd("b.rs", Rule::ReduceTaint, 9, "x += y;"),
        ];
        let text = render_report(&diags);
        let v = parse_json(&text).unwrap();
        let obj = v.as_obj().unwrap();
        let findings =
            obj.iter().find(|(k, _)| k == "findings").and_then(|(_, v)| v.as_arr()).unwrap();
        assert_eq!(findings.len(), 2);
        let rules = obj.iter().find(|(k, _)| k == "rules").and_then(|(_, v)| v.as_arr()).unwrap();
        assert_eq!(rules.len(), Rule::ALL.len());
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let old = vec![fd("a.rs", Rule::HotAlloc, 3, "  let v = Vec::new();  ")];
        let baseline = Baseline::parse(&render_baseline(&old)).unwrap();
        assert_eq!(baseline.len(), 1);

        // Identical finding (different line, same snippet): covered.
        let now = vec![fd("a.rs", Rule::HotAlloc, 30, "let v = Vec::new();")];
        let diff = ratchet_diff(&baseline, &now);
        assert!(diff.new.is_empty());
        assert!(diff.stale.is_empty());

        // A second identical finding exceeds the multiset budget.
        let now2 = vec![
            fd("a.rs", Rule::HotAlloc, 30, "let v = Vec::new();"),
            fd("a.rs", Rule::HotAlloc, 31, "let v = Vec::new();"),
        ];
        let diff2 = ratchet_diff(&baseline, &now2);
        assert_eq!(diff2.new.len(), 1);

        // Finding gone: the baseline entry is stale.
        let diff3 = ratchet_diff(&baseline, &[]);
        assert!(diff3.new.is_empty());
        assert_eq!(diff3.stale.len(), 1);
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{\n  \"version\": 2,\n  \"entries\": [\n  ]\n}\n").unwrap();
        assert!(b.is_empty());
        let rendered = render_baseline(&[]);
        assert!(Baseline::parse(&rendered).unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("[1,2").is_err());
        assert!(Baseline::parse("{\"entries\": [{}]}").is_err());
        assert!(Baseline::parse("{\"entries\": 3}").is_err());
    }

    #[test]
    fn escapes_survive() {
        let diags = vec![fd("a.rs", Rule::PanicPath, 1, "s.push('\\n'); // \"x\"\t")];
        let b = Baseline::parse(&render_baseline(&diags)).unwrap();
        assert_eq!(b.entries[0].2, "s.push('\\n'); // \"x\"");
    }
}
