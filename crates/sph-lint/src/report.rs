//! Machine-readable output: the `--json` report and the ratchet baseline.
//!
//! The JSON value/writer/parser layer lives in the shared `sph-json`
//! crate (also dependency-free, so sph-lint keeps working when the
//! workspace it checks is broken); this module owns the report and
//! baseline *schemas* on top of it.
//!
//! # Report schema (`--json`)
//!
//! ```json
//! {
//!   "version": 2,
//!   "rules":    [ { "id": "R6", "slug": "hot-alloc", "description": "…" }, … ],
//!   "findings": [ { "path": "crates/sph-core/src/density.rs", "line": 41,
//!                   "col": 9, "id": "R6", "slug": "hot-alloc",
//!                   "message": "…", "snippet": "…" }, … ],
//!   "total": 0
//! }
//! ```
//!
//! # Ratchet baseline (`lint_baseline.json`)
//!
//! A multiset of `{path, slug, snippet}` keys. Line numbers are deliberately
//! absent: the baseline must survive unrelated edits above a finding. The
//! gate logic ([`ratchet_diff`]) fails on any finding not covered by the
//! baseline (regressions) and warns on baseline entries that no longer
//! match (stale — ratchet the file down). The repo's committed baseline is
//! **empty** and the CI gate keeps it that way; the mechanism exists so a
//! future rule can land before its last finding is burned down, without
//! going silent on new code.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sph_json::{parse as parse_json, quoted as json_str};

use crate::rules::Rule;
use crate::FileDiagnostic;

/// Report schema version.
pub const REPORT_VERSION: u64 = 2;

/// Render the full `--json` report.
pub fn render_report(diags: &[FileDiagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": ");
    let _ = write!(s, "{REPORT_VERSION}");
    s.push_str(",\n  \"rules\": [\n");
    for (i, rule) in Rule::ALL.into_iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"id\": {}, \"slug\": {}, \"description\": {} }}",
            json_str(rule.id()),
            json_str(rule.slug()),
            json_str(rule.describe())
        );
        s.push_str(if i + 1 < Rule::ALL.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"path\": {}, \"line\": {}, \"col\": {}, \"id\": {}, \"slug\": {}, \
             \"message\": {}, \"snippet\": {} }}",
            json_str(&d.path),
            d.diagnostic.line,
            d.diagnostic.col,
            json_str(d.diagnostic.rule.id()),
            json_str(d.diagnostic.rule.slug()),
            json_str(&d.diagnostic.message),
            json_str(&d.snippet)
        );
        s.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    let _ = write!(s, "  ],\n  \"total\": {}\n}}\n", diags.len());
    s
}

/// Render the current findings as a baseline file (`--write-baseline`).
pub fn render_baseline(diags: &[FileDiagnostic]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\n  \"version\": {REPORT_VERSION},\n  \"entries\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            s,
            "    {{ \"path\": {}, \"slug\": {}, \"snippet\": {} }}",
            json_str(&d.path),
            json_str(d.diagnostic.rule.slug()),
            json_str(d.snippet.trim())
        );
        s.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// One grandfathered finding: `(path, rule slug, trimmed snippet)`.
pub type BaselineKey = (String, String, String);

/// The parsed ratchet baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineKey>,
}

impl Baseline {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Parse a baseline file. Errors carry a byte offset for context.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = parse_json(text)?;
        let obj = value.as_obj().ok_or("baseline: top level must be an object")?;
        let mut entries = Vec::new();
        let Some(list) = obj.iter().find(|(k, _)| k == "entries").map(|(_, v)| v) else {
            return Ok(Baseline { entries });
        };
        let arr = list.as_arr().ok_or("baseline: \"entries\" must be an array")?;
        for (i, e) in arr.iter().enumerate() {
            let eobj = e.as_obj().ok_or_else(|| format!("baseline: entry {i} not an object"))?;
            let field = |name: &str| -> Result<String, String> {
                eobj.iter()
                    .find(|(k, _)| k == name)
                    .and_then(|(_, v)| v.as_str())
                    .map(str::to_string)
                    .ok_or_else(|| format!("baseline: entry {i} missing string \"{name}\""))
            };
            entries.push((field("path")?, field("slug")?, field("snippet")?));
        }
        Ok(Baseline { entries })
    }
}

/// Result of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct RatchetDiff {
    /// Indices (into the findings slice) not covered by the baseline —
    /// these fail the gate.
    pub new: Vec<usize>,
    /// Baseline entries that matched nothing — stale; warn and ratchet.
    pub stale: Vec<BaselineKey>,
}

/// Multiset diff: each baseline entry absorbs at most one identical
/// finding; everything left on either side is reported.
pub fn ratchet_diff(baseline: &Baseline, diags: &[FileDiagnostic]) -> RatchetDiff {
    let mut budget: BTreeMap<&BaselineKey, usize> = BTreeMap::new();
    for key in &baseline.entries {
        *budget.entry(key).or_insert(0) += 1;
    }
    let mut diff = RatchetDiff::default();
    for (i, d) in diags.iter().enumerate() {
        let key: BaselineKey =
            (d.path.clone(), d.diagnostic.rule.slug().to_string(), d.snippet.trim().to_string());
        match budget.get_mut(&key) {
            Some(n) if *n > 0 => *n -= 1,
            _ => diff.new.push(i),
        }
    }
    for (key, n) in budget {
        for _ in 0..n {
            diff.stale.push(key.clone());
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn fd(path: &str, rule: Rule, line: u32, snippet: &str) -> FileDiagnostic {
        FileDiagnostic {
            path: path.to_string(),
            diagnostic: Diagnostic { rule, line, col: 1, message: "m \"quoted\"".to_string() },
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn report_parses_back_and_counts() {
        let diags = vec![
            fd("a.rs", Rule::HotAlloc, 3, "let v = Vec::new();"),
            fd("b.rs", Rule::ReduceTaint, 9, "x += y;"),
        ];
        let text = render_report(&diags);
        let v = parse_json(&text).unwrap();
        let obj = v.as_obj().unwrap();
        let findings =
            obj.iter().find(|(k, _)| k == "findings").and_then(|(_, v)| v.as_arr()).unwrap();
        assert_eq!(findings.len(), 2);
        let rules = obj.iter().find(|(k, _)| k == "rules").and_then(|(_, v)| v.as_arr()).unwrap();
        assert_eq!(rules.len(), Rule::ALL.len());
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let old = vec![fd("a.rs", Rule::HotAlloc, 3, "  let v = Vec::new();  ")];
        let baseline = Baseline::parse(&render_baseline(&old)).unwrap();
        assert_eq!(baseline.len(), 1);

        // Identical finding (different line, same snippet): covered.
        let now = vec![fd("a.rs", Rule::HotAlloc, 30, "let v = Vec::new();")];
        let diff = ratchet_diff(&baseline, &now);
        assert!(diff.new.is_empty());
        assert!(diff.stale.is_empty());

        // A second identical finding exceeds the multiset budget.
        let now2 = vec![
            fd("a.rs", Rule::HotAlloc, 30, "let v = Vec::new();"),
            fd("a.rs", Rule::HotAlloc, 31, "let v = Vec::new();"),
        ];
        let diff2 = ratchet_diff(&baseline, &now2);
        assert_eq!(diff2.new.len(), 1);

        // Finding gone: the baseline entry is stale.
        let diff3 = ratchet_diff(&baseline, &[]);
        assert!(diff3.new.is_empty());
        assert_eq!(diff3.stale.len(), 1);
    }

    #[test]
    fn empty_baseline_parses() {
        let b = Baseline::parse("{\n  \"version\": 2,\n  \"entries\": [\n  ]\n}\n").unwrap();
        assert!(b.is_empty());
        let rendered = render_baseline(&[]);
        assert!(Baseline::parse(&rendered).unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("[1,2").is_err());
        assert!(Baseline::parse("{\"entries\": [{}]}").is_err());
        assert!(Baseline::parse("{\"entries\": 3}").is_err());
    }

    #[test]
    fn escapes_survive() {
        let diags = vec![fd("a.rs", Rule::PanicPath, 1, "s.push('\\n'); // \"x\"\t")];
        let b = Baseline::parse(&render_baseline(&diags)).unwrap();
        assert_eq!(b.entries[0].2, "s.push('\\n'); // \"x\"");
    }
}
