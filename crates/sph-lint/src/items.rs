//! Lightweight item parser: recovers `fn`/`impl`/`trait`/`mod`/`use`
//! structure from the lexer's token stream — names, nesting, byte spans,
//! and body token ranges — without building a full AST.
//!
//! The parser is a single linear scan with a scope stack. It is built to
//! the same contract as the lexer: any byte soup goes in, items with
//! properly nested spans come out. Guarantees (property-tested in
//! `tests/item_props.rs`):
//!
//! - item spans are in-bounds and either disjoint or properly nested;
//! - every `fn` keyword followed by an identifier becomes exactly one
//!   `Fn` item whose span covers that keyword;
//! - `body` token ranges lie strictly inside the recording item's span.
//!
//! On real Rust it additionally recovers the `impl`/`trait` target type a
//! method belongs to (`impl CellGrid { fn scan(..) }` → `scan` has
//! `impl_target == Some("CellGrid")`), which the call graph uses to
//! narrow `Type::method(…)` call resolution.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Fn,
    Impl,
    Trait,
    Mod,
    Use,
}

/// One recovered item. Indices refer to the *code* token slice the parser
/// was given (comments filtered out), not to the raw token stream.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Item name: the fn/trait/mod identifier, the impl target type, or
    /// the trailing path segment of a `use`.
    pub name: String,
    /// Index of the innermost enclosing item, if any.
    pub parent: Option<usize>,
    /// Byte span from the introducing keyword to the closing `}`/`;` (or
    /// EOF when the source is truncated).
    pub span: (usize, usize),
    /// Code-token index range of the body between the braces, exclusive
    /// of the braces themselves; `None` for bodyless items.
    pub body: Option<(usize, usize)>,
    /// Code-token index of the introducing keyword.
    pub keyword_tok: usize,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// For `Fn` items: the enclosing `impl`/`trait` target, when any.
    pub impl_target: Option<String>,
}

/// Parse items out of `code` (comment-free tokens over `src`).
pub fn parse_items(src: &str, code: &[Token]) -> Vec<Item> {
    Parser { src, code, items: Vec::new(), scopes: Vec::new(), pending: None }.run()
}

/// One brace scope; `item` is set when the `{` belonged to an item header.
struct BraceScope {
    item: Option<usize>,
}

struct Parser<'a> {
    src: &'a str,
    code: &'a [Token],
    items: Vec<Item>,
    scopes: Vec<BraceScope>,
    /// Item whose header has started but whose `{` or `;` has not been
    /// seen yet.
    pending: Option<usize>,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.code.get(i).map(|t| t.text(self.src)).unwrap_or("")
    }

    fn is_ident(&self, i: usize) -> bool {
        self.code.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn run(mut self) -> Vec<Item> {
        let mut i = 0usize;
        while i < self.code.len() {
            let tt = self.text(i);
            let is_kw = self.is_ident(i);
            match tt {
                // `fn` always starts an item when a name follows — even
                // mid-header in soup, so every named `fn` token is covered.
                "fn" if is_kw => {
                    if let Some((name, after)) = self.fn_name(i + 1) {
                        self.start_item(ItemKind::Fn, name, i);
                        i = after;
                        continue;
                    }
                }
                // The other item keywords are ignored while a header is
                // pending: `impl` legitimately appears inside fn
                // signatures (`-> impl Iterator`, `x: impl Fn()`).
                "impl" if is_kw && self.pending.is_none() => {
                    let name = self.impl_target(i + 1);
                    self.start_item(ItemKind::Impl, name, i);
                }
                "trait" if is_kw && self.pending.is_none() && self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    self.start_item(ItemKind::Trait, name, i);
                }
                "mod" if is_kw && self.pending.is_none() && self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    self.start_item(ItemKind::Mod, name, i);
                }
                "use" if is_kw && self.pending.is_none() => {
                    i = self.use_item(i);
                    continue;
                }
                "{" => {
                    let item = self.pending.take();
                    if let Some(idx) = item {
                        // Body starts after this brace.
                        self.items[idx].body = Some((i + 1, i + 1));
                    }
                    self.scopes.push(BraceScope { item });
                }
                "}" => {
                    // A pending header cannot survive its scope closing.
                    self.finalize_pending_at(i.saturating_sub(1));
                    if let Some(scope) = self.scopes.pop() {
                        if let Some(idx) = scope.item {
                            let end = self.code[i].end;
                            self.items[idx].span.1 = end;
                            if let Some((s, _)) = self.items[idx].body {
                                self.items[idx].body = Some((s, i));
                            }
                        }
                    }
                }
                ";" => {
                    // Bodyless item (`fn f();`, `mod m;`): ends here.
                    if let Some(idx) = self.pending.take() {
                        self.items[idx].span.1 = self.code[i].end;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Truncated source: close everything at EOF.
        self.finalize_pending_at(self.code.len().saturating_sub(1));
        while let Some(scope) = self.scopes.pop() {
            if let Some(idx) = scope.item {
                self.items[idx].span.1 = self.src.len();
                if let Some((s, _)) = self.items[idx].body {
                    self.items[idx].body = Some((s, self.code.len()));
                }
            }
        }
        self.items
    }

    /// Record a new item starting at keyword token `kw`. Any pending
    /// header is closed first so spans stay disjoint.
    fn start_item(&mut self, kind: ItemKind, name: String, kw: usize) {
        self.finalize_pending_at(kw.saturating_sub(1));
        let parent = self.innermost_item();
        let impl_target = if kind == ItemKind::Fn { self.enclosing_target() } else { None };
        let tok = &self.code[kw];
        let idx = self.items.len();
        self.items.push(Item {
            kind,
            name,
            parent,
            span: (tok.start, tok.end),
            body: None,
            keyword_tok: kw,
            line: tok.line,
            impl_target,
        });
        self.pending = Some(idx);
    }

    /// Close a pending header (one that never saw its `{`/`;`) at the end
    /// of token `last`.
    fn finalize_pending_at(&mut self, last: usize) {
        if let Some(idx) = self.pending.take() {
            let end = self
                .code
                .get(last)
                .map(|t| t.end.max(self.items[idx].span.0))
                .unwrap_or(self.items[idx].span.1);
            self.items[idx].span.1 = end.max(self.items[idx].span.1);
        }
    }

    /// Innermost enclosing item on the scope stack.
    fn innermost_item(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| s.item)
    }

    /// The `impl`/`trait` target a new fn belongs to, from the innermost
    /// enclosing impl/trait scope (a `mod` in between does not clear it;
    /// a nested free fn does — fns inside fn bodies are free).
    fn enclosing_target(&self) -> Option<String> {
        for scope in self.scopes.iter().rev() {
            if let Some(idx) = scope.item {
                let it = &self.items[idx];
                match it.kind {
                    ItemKind::Impl | ItemKind::Trait => return Some(it.name.clone()),
                    ItemKind::Fn => return None,
                    _ => {}
                }
            }
        }
        None
    }

    /// Function name at `i` (just past the `fn` keyword). Handles raw
    /// identifiers (`r` `#` `name` at the token level). Returns the name
    /// and the index just past it.
    fn fn_name(&self, i: usize) -> Option<(String, usize)> {
        if self.is_ident(i)
            && self.text(i) == "r"
            && self.text(i + 1) == "#"
            && self.is_ident(i + 2)
        {
            return Some((self.text(i + 2).to_string(), i + 3));
        }
        if self.is_ident(i) && !is_reserved(self.text(i)) {
            return Some((self.text(i).to_string(), i + 1));
        }
        None
    }

    /// Impl target: the last identifier at angle-bracket depth 0 before
    /// the body opens, taken after `for` when a trait impl (`impl Trait
    /// for Type`). `impl Drop for Box<dyn Any>` → `Box`.
    fn impl_target(&self, mut i: usize) -> String {
        let mut depth = 0isize;
        let mut last = String::new();
        let mut last_after_for = String::new();
        let mut seen_for = false;
        while i < self.code.len() {
            let tt = self.text(i);
            match tt {
                "<" => depth += 1,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                "<<" => depth += 2,
                "{" | ";" if depth <= 0 => break,
                "where" if depth <= 0 && self.is_ident(i) => break,
                "for" if depth <= 0 && self.is_ident(i) => seen_for = true,
                _ if depth <= 0 && self.is_ident(i) && !is_reserved(tt) => {
                    last = tt.to_string();
                    if seen_for {
                        last_after_for = tt.to_string();
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if seen_for && !last_after_for.is_empty() {
            last_after_for
        } else {
            last
        }
    }

    /// Record a `use …;` item and return the index just past its `;`.
    fn use_item(&mut self, kw: usize) -> usize {
        self.finalize_pending_at(kw.saturating_sub(1));
        let parent = self.innermost_item();
        let tok = &self.code[kw];
        let mut j = kw + 1;
        let mut name = String::new();
        let mut depth = 0isize;
        while j < self.code.len() {
            let tt = self.text(j);
            match tt {
                "{" => depth += 1,
                "}" => {
                    if depth == 0 {
                        break; // stray close: the use was truncated
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => break,
                _ => {
                    if self.is_ident(j) && depth == 0 {
                        name = tt.to_string();
                    }
                }
            }
            j += 1;
        }
        let end = self.code.get(j).map(|t| t.end).unwrap_or(self.src.len());
        self.items.push(Item {
            kind: ItemKind::Use,
            name,
            parent,
            span: (tok.start, end),
            body: None,
            keyword_tok: kw,
            line: tok.line,
            impl_target: None,
        });
        if j < self.code.len() && self.text(j) == ";" {
            j + 1
        } else {
            j
        }
    }
}

/// Keywords that cannot be an item name (so `fn` followed by one is not a
/// named fn — e.g. the `fn` in a fn-pointer type). Public so the property
/// tests can restate the fn-coverage invariant exactly.
pub fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "fn" | "impl"
            | "trait"
            | "mod"
            | "use"
            | "for"
            | "while"
            | "loop"
            | "if"
            | "else"
            | "match"
            | "let"
            | "mut"
            | "ref"
            | "pub"
            | "where"
            | "struct"
            | "enum"
            | "type"
            | "const"
            | "static"
            | "unsafe"
            | "extern"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "as"
            | "in"
            | "move"
            | "return"
            | "break"
            | "continue"
            | "dyn"
            | "async"
            | "await"
            | "box"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        let tokens = lex(src);
        let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
        parse_items(src, &code)
    }

    #[test]
    fn free_fn_and_method() {
        let src = "fn free() { x(); }\nimpl CellGrid { fn scan(&self) {} }";
        let items = parse(src);
        let fns: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "free");
        assert_eq!(fns[0].impl_target, None);
        assert_eq!(fns[1].name, "scan");
        assert_eq!(fns[1].impl_target.as_deref(), Some("CellGrid"));
    }

    #[test]
    fn trait_impl_target_is_the_type_not_the_trait() {
        let items = parse("impl NeighborQuery for CellGrid { fn count_within(&self) {} }");
        let f = items.iter().find(|i| i.kind == ItemKind::Fn).unwrap();
        assert_eq!(f.impl_target.as_deref(), Some("CellGrid"));
        let im = items.iter().find(|i| i.kind == ItemKind::Impl).unwrap();
        assert_eq!(im.name, "CellGrid");
    }

    #[test]
    fn generic_impl_target_ignores_angle_brackets() {
        let items = parse("impl<T: Clone> Wrapper<Vec<T>> { fn get(&self) {} }");
        let f = items.iter().find(|i| i.kind == ItemKind::Fn).unwrap();
        assert_eq!(f.impl_target.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn impl_in_signature_is_not_an_item() {
        let items = parse("fn f(x: impl Fn() -> u32) -> impl Iterator<Item = u32> { g() }");
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Impl).count(), 0);
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 1);
    }

    #[test]
    fn nested_fns_have_parents_and_nested_spans() {
        let src = "mod m { fn outer() { fn inner() {} } }";
        let items = parse(src);
        let m = items.iter().position(|i| i.name == "m").unwrap();
        let outer = items.iter().position(|i| i.name == "outer").unwrap();
        let inner = items.iter().position(|i| i.name == "inner").unwrap();
        assert_eq!(items[outer].parent, Some(m));
        assert_eq!(items[inner].parent, Some(outer));
        assert!(items[outer].span.0 > items[m].span.0 && items[outer].span.1 < items[m].span.1);
        assert!(
            items[inner].span.0 > items[outer].span.0 && items[inner].span.1 <= items[outer].span.1
        );
        // A fn nested in a fn body is free, not a method.
        assert_eq!(items[inner].impl_target, None);
    }

    #[test]
    fn bodyless_trait_fn_ends_at_semicolon() {
        let items = parse("trait Q { fn clamp_radius(&self, r: f64) -> f64; fn go(&self) {} }");
        let fns: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "clamp_radius");
        assert!(fns[0].body.is_none());
        assert_eq!(fns[1].name, "go");
        assert!(fns[1].body.is_some());
        assert!(fns[0].span.1 <= fns[1].span.0, "sibling spans must be disjoint");
    }

    #[test]
    fn use_records_trailing_segment() {
        let items = parse("use sph_math::{Vec3, REDUCE_CHUNK};\nuse rayon::prelude::*;");
        let uses: Vec<&Item> = items.iter().filter(|i| i.kind == ItemKind::Use).collect();
        assert_eq!(uses.len(), 2);
        assert_eq!(uses[0].name, "sph_math");
        assert_eq!(uses[1].name, "prelude");
    }

    #[test]
    fn raw_identifier_fn_name() {
        let items = parse("fn r#match() {}");
        assert_eq!(items[0].name, "match");
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let items = parse("fn f(cb: fn(u32) -> u32) {}");
        assert_eq!(items.iter().filter(|i| i.kind == ItemKind::Fn).count(), 1);
        assert_eq!(items[0].name, "f");
    }

    #[test]
    fn truncated_source_closes_at_eof() {
        let src = "impl G { fn scan(&self) { loop {";
        let items = parse(src);
        let f = items.iter().find(|i| i.kind == ItemKind::Fn).unwrap();
        assert_eq!(f.span.1, src.len());
        let im = items.iter().find(|i| i.kind == ItemKind::Impl).unwrap();
        assert_eq!(im.span.1, src.len());
    }
}
