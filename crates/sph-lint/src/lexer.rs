//! A hand-rolled, loss-tolerant Rust lexer.
//!
//! The rule engine only needs a token stream that is *reliable about
//! context* — it must never mistake the contents of a string literal or a
//! comment for code (or vice versa), because rules match on identifiers and
//! suppressions live in comments. That forces the lexer to get the genuinely
//! tricky Rust surface right:
//!
//! * raw strings `r"…"` / `r#"…"#` (any hash depth) and raw *identifiers*
//!   `r#match`, which share a prefix,
//! * nested block comments `/* /* … */ */`,
//! * lifetimes `'a` vs. char literals `'a'` (and escapes `'\u{1F600}'`),
//! * doc comments (`///`, `//!`, `/** … */`, `/*! … */`) vs. plain ones
//!   (`////…` and `/***…` are *not* doc comments, matching rustc).
//!
//! Everything else is deliberately simple: keywords are plain [`Ident`]s,
//! compound operators are single [`Punct`] tokens by maximal munch, and
//! malformed input (unterminated literals, stray bytes) produces
//! [`Unterminated`]/[`Unknown`] tokens instead of errors — the lexer never
//! panics and never loses a non-whitespace byte, which the property tests
//! assert over arbitrary input.
//!
//! [`Ident`]: TokenKind::Ident
//! [`Punct`]: TokenKind::Punct
//! [`Unterminated`]: TokenKind::Unterminated
//! [`Unknown`]: TokenKind::Unknown

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `for`, `unsafe`, `r#match`).
    Ident,
    /// Lifetime or loop label: `'a`, `'static`, `'_` — no closing quote.
    Lifetime,
    /// Character literal `'x'`, `'\n'`, `'\u{1F600}'`, or byte `b'x'`.
    CharLit,
    /// String literal `"…"`, byte string `b"…"`, or C string `c"…"`.
    StrLit,
    /// Raw (byte/C) string `r"…"`, `r#"…"#`, `br#"…"#`, `cr"…"`.
    RawStrLit,
    /// Numeric literal, including prefixes/suffixes (`0xffu32`, `1.5e-3`).
    NumLit,
    /// Plain line comment `// …` (also `////…`).
    LineComment,
    /// Plain block comment `/* … */`, nesting handled.
    BlockComment,
    /// Doc comment: `/// …`, `//! …`, `/** … */`, `/*! … */`.
    DocComment,
    /// Operator or delimiter; compound operators are one token (`+=`, `::`).
    Punct,
    /// A literal or block comment that reached end-of-file unclosed.
    Unterminated,
    /// A byte the lexer has no grammar for (e.g. stray `\`); one char wide.
    Unknown,
}

/// One token: a classified byte range of the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: u32,
    /// 1-based character (not byte) column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The source text this token spans.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for the comment kinds (the only trivia the lexer keeps).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Tokenize `src` completely. Total: every non-whitespace byte of the input
/// is covered by exactly one token, and tokens are strictly ordered.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(ch) = cur.peek() {
        if ch.is_whitespace() {
            cur.bump();
            continue;
        }
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = cur.next_token_kind(ch);
        debug_assert!(cur.pos > start, "lexer must always make progress");
        out.push(Token { kind, start, end: cur.pos, line, col });
    }
    out
}

/// Compound operators, longest first so maximal munch works by first match.
const COMPOUND_OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "<<", ">>", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(ch: char) -> bool {
    ch == '_' || ch.is_alphabetic()
}

fn is_ident_continue(ch: char) -> bool {
    ch == '_' || ch.is_alphanumeric()
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src, pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    /// Peek the `n`-th character ahead (0 = the next one).
    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.peek()?;
        self.pos += ch.len_utf8();
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    /// Dispatch on the first character; consumes exactly one token.
    fn next_token_kind(&mut self, ch: char) -> TokenKind {
        match ch {
            '/' if self.peek_at(1) == Some('/') => self.line_comment(),
            '/' if self.peek_at(1) == Some('*') => self.block_comment(),
            '\'' => self.char_or_lifetime(),
            '"' => self.string_body(),
            '0'..='9' => self.number(),
            'r' | 'b' | 'c' if self.literal_prefix(ch) => self.prefixed_literal(ch),
            _ if is_ident_start(ch) => {
                self.eat_while(is_ident_continue);
                TokenKind::Ident
            }
            _ => self.punct_or_unknown(),
        }
    }

    /// Does `ch` at the cursor start a prefixed literal (raw string, byte
    /// string/char, C string) rather than a plain identifier?
    fn literal_prefix(&self, ch: char) -> bool {
        match ch {
            // r"…", r#"…"# (any hash depth). `r#ident` is a raw identifier.
            'r' => self.raw_quote_after(1),
            // b"…", b'…', br"…", br#"…"#.
            'b' => {
                matches!(self.peek_at(1), Some('"') | Some('\''))
                    || (self.peek_at(1) == Some('r') && self.raw_quote_after(2))
            }
            // c"…", cr"…", cr#"…"#.
            'c' => {
                self.peek_at(1) == Some('"')
                    || (self.peek_at(1) == Some('r') && self.raw_quote_after(2))
            }
            _ => false,
        }
    }

    /// True when positions `n, n+1, …` hold zero or more `#`s then a `"`.
    fn raw_quote_after(&self, n: usize) -> bool {
        let mut i = n;
        while self.peek_at(i) == Some('#') {
            i += 1;
        }
        self.peek_at(i) == Some('"')
    }

    fn line_comment(&mut self) -> TokenKind {
        self.bump();
        self.bump(); // consume `//`
                     // `///` (but not `////`) and `//!` are doc comments, as in rustc.
        let doc = match self.peek() {
            Some('/') => self.peek_at(1) != Some('/'),
            Some('!') => true,
            _ => false,
        };
        self.eat_while(|c| c != '\n');
        if doc {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        }
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump();
        self.bump(); // consume `/*`
                     // `/**` (but not `/***` or the empty `/**/`) and `/*!` are doc.
        let doc = match self.peek() {
            Some('*') => !matches!(self.peek_at(1), Some('*') | Some('/')),
            Some('!') => true,
            _ => false,
        };
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek() {
                None => return TokenKind::Unterminated,
                Some('/') if self.peek_at(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek_at(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
        if doc {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        }
    }

    /// After a leading `'`: decide lifetime vs. char literal.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // consume `'`
        match self.peek() {
            // Escape sequence ⇒ definitely a char literal; scan to the
            // closing quote (escapes like `\u{1F600}` never contain `'`).
            Some('\\') => {
                self.bump();
                self.bump(); // the escaped character itself
                self.eat_while(|c| c != '\'' && c != '\n');
                match self.peek() {
                    Some('\'') => {
                        self.bump();
                        TokenKind::CharLit
                    }
                    _ => TokenKind::Unterminated,
                }
            }
            // `''` — not valid Rust, but tolerate as a degenerate char.
            Some('\'') => {
                self.bump();
                TokenKind::CharLit
            }
            // `'a…`: identifier characters. `'a'` closes ⇒ char literal;
            // otherwise it is a lifetime/label (`'a`, `'static`, `'_`).
            Some(c) if is_ident_start(c) => {
                self.eat_while(is_ident_continue);
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::CharLit
                } else {
                    TokenKind::Lifetime
                }
            }
            // `'3'`, `'+'`, … — one arbitrary char then a closing quote.
            Some(_) => {
                self.bump();
                if self.peek() == Some('\'') {
                    self.bump();
                    TokenKind::CharLit
                } else {
                    TokenKind::Unknown
                }
            }
            None => TokenKind::Unknown,
        }
    }

    /// Cooked string body starting at `"`; handles `\"` and `\\`.
    fn string_body(&mut self) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None => return TokenKind::Unterminated,
                Some('\\') => {
                    self.bump();
                    if self.bump().is_none() {
                        return TokenKind::Unterminated;
                    }
                }
                Some('"') => {
                    self.bump();
                    return TokenKind::StrLit;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    /// Literal with an `r`/`b`/`c` prefix; `literal_prefix` vouched for it.
    fn prefixed_literal(&mut self, first: char) -> TokenKind {
        self.bump(); // the prefix letter
        match first {
            'b' if self.peek() == Some('\'') => self.char_or_lifetime(),
            'b' | 'c' if self.peek() == Some('r') => {
                self.bump();
                self.raw_string_body()
            }
            'r' => self.raw_string_body(),
            _ => self.string_body(), // b"…" / c"…"
        }
    }

    /// Raw string after the prefix letters: `#`* `"` … `"` `#`*.
    fn raw_string_body(&mut self) -> TokenKind {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // the opening quote (guaranteed by literal_prefix)
        loop {
            match self.peek() {
                None => return TokenKind::Unterminated,
                Some('"') => {
                    self.bump();
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return TokenKind::RawStrLit;
                    }
                    // Not the terminator (too few hashes) — keep scanning.
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        if self.peek() == Some('0') && matches!(self.peek_at(1), Some('x') | Some('o') | Some('b'))
        {
            self.bump();
            self.bump();
            self.eat_while(|c| c.is_ascii_hexdigit() || c == '_');
        } else {
            self.eat_while(|c| c.is_ascii_digit() || c == '_');
            // Fractional part: `1.5`, and trailing-dot floats `1.` — but not
            // `1..n` (range) and not `1.method()` (field/method access).
            if self.peek() == Some('.') {
                match self.peek_at(1) {
                    Some(c) if c.is_ascii_digit() => {
                        self.bump();
                        self.eat_while(|c| c.is_ascii_digit() || c == '_');
                    }
                    Some(c) if c != '.' && !is_ident_start(c) => {
                        self.bump();
                    }
                    None => {
                        self.bump();
                    }
                    _ => {}
                }
            }
            // Exponent: `1e5`, `1e-5`; only if an actual exponent follows,
            // so `1e` alone falls through to suffix consumption.
            if matches!(self.peek(), Some('e') | Some('E')) {
                let after_sign = match self.peek_at(1) {
                    Some('+') | Some('-') => 2,
                    _ => 1,
                };
                if self.peek_at(after_sign).is_some_and(|c| c.is_ascii_digit()) {
                    self.bump(); // e
                    if after_sign == 2 {
                        self.bump(); // sign
                    }
                    self.eat_while(|c| c.is_ascii_digit() || c == '_');
                }
            }
        }
        // Type suffix (`u32`, `f64`, `usize`): any trailing ident chars.
        self.eat_while(is_ident_continue);
        TokenKind::NumLit
    }

    fn punct_or_unknown(&mut self) -> TokenKind {
        let rest = &self.src[self.pos..];
        for op in COMPOUND_OPS {
            if rest.starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                return TokenKind::Punct;
            }
        }
        let ch = self.bump();
        match ch {
            Some(c) if "+-*/%^&|!<>=.,;:#$?@~()[]{}".contains(c) => TokenKind::Punct,
            _ => TokenKind::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn idents_keywords_and_raw_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("fn r#match unsafe _x αβ"),
            vec![
                (Ident, "fn"),
                (Ident, "r"),
                (Punct, "#"),
                (Ident, "match"),
                (Ident, "unsafe"),
                (Ident, "_x"),
                (Ident, "αβ"),
            ]
        );
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("a += b; c <<= 2; x..=y"),
            vec![
                (Ident, "a"),
                (Punct, "+="),
                (Ident, "b"),
                (Punct, ";"),
                (Ident, "c"),
                (Punct, "<<="),
                (NumLit, "2"),
                (Punct, ";"),
                (Ident, "x"),
                (Punct, "..="),
                (Ident, "y"),
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("0xff_u32 1_000 1.5e-3 1. 0b1010 2usize"),
            vec![
                (NumLit, "0xff_u32"),
                (NumLit, "1_000"),
                (NumLit, "1.5e-3"),
                (NumLit, "1."),
                (NumLit, "0b1010"),
                (NumLit, "2usize"),
            ]
        );
        // `1..n` is a range, not a float followed by garbage.
        assert_eq!(kinds("0..n"), vec![(NumLit, "0"), (Punct, ".."), (Ident, "n")]);
        // `1.max(2.0)` is a method call on an integer literal.
        assert_eq!(kinds("1.max")[0], (NumLit, "1"));
    }

    #[test]
    fn spans_carry_lines_and_cols() {
        let src = "ab\n  cd";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text(src), "cd");
    }

    #[test]
    fn strings_with_escapes() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"let s = "a \" b"; x"#),
            vec![
                (Ident, "let"),
                (Ident, "s"),
                (Punct, "="),
                (StrLit, r#""a \" b""#),
                (Punct, ";"),
                (Ident, "x"),
            ]
        );
        assert_eq!(kinds(r#"b"bytes" c"cstr""#)[0].0, StrLit);
    }

    #[test]
    fn code_inside_string_is_not_code() {
        let src = r#"let s = "x.unwrap() /* not a comment */ // nope";"#;
        let toks = lex(src);
        assert!(toks.iter().all(|t| !t.is_comment()));
        assert!(!toks.iter().any(|t| t.kind == TokenKind::Ident && t.text(src) == "unwrap"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* /* nested", "'\\u{12", "b\"", "r###\"x\"##"] {
            let toks = lex(src);
            assert_eq!(toks.last().map(|t| t.kind), Some(TokenKind::Unterminated), "{src:?}");
        }
    }

    #[test]
    fn stray_bytes_are_unknown_not_fatal() {
        let src = "a \\ b";
        let toks = lex(src);
        assert_eq!(toks[1].kind, TokenKind::Unknown);
        assert_eq!(toks.len(), 3);
    }
}
