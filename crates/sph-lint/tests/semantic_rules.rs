//! Fixture tests of the call-graph rules R6–R8: each rule must fire
//! through the workspace call graph (including across files) and every
//! documented exemption must hold. Fixtures drive [`sph_lint::lint_sources`]
//! — the same pipeline `--workspace` runs after reading files.

use sph_lint::{lint_sources, Rule};

/// Run the workspace pipeline over `(path, source)` fixtures and return
/// `(path, rule, line)` triples.
fn lint(files: &[(&str, &str)]) -> Vec<(String, Rule, u32)> {
    lint_sources(files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect())
        .into_iter()
        .map(|d| (d.path, d.diagnostic.rule, d.diagnostic.line))
        .collect()
}

fn rules_in(diags: &[(String, Rule, u32)], path: &str) -> Vec<Rule> {
    diags.iter().filter(|(p, _, _)| p == path).map(|&(_, r, _)| r).collect()
}

// ---------------------------------------------------------------------------
// R6 hot-alloc
// ---------------------------------------------------------------------------

#[test]
fn r6_fires_on_alloc_reachable_from_seed_across_files() {
    let diags = lint(&[
        (
            "crates/sph-core/src/density.rs",
            "pub fn compute_density(n: usize) -> f64 { helper_scratch(n) }\n",
        ),
        (
            "crates/sph-tree/src/scratch.rs",
            "pub fn helper_scratch(n: usize) -> f64 {\n\
             \x20   let mut v: Vec<f64> = Vec::new();\n\
             \x20   v.resize(n, 0.0);\n\
             \x20   v[0]\n\
             }\n",
        ),
    ]);
    assert_eq!(
        rules_in(&diags, "crates/sph-tree/src/scratch.rs"),
        vec![Rule::HotAlloc],
        "Vec::new two hops from the compute_density seed must fire: {diags:?}"
    );
}

#[test]
fn r6_quiet_when_not_reachable_from_any_seed() {
    let diags = lint(&[(
        "crates/sph-exa/src/setup.rs",
        "pub fn build_initial_conditions(n: usize) -> Vec<f64> {\n\
         \x20   let mut v: Vec<f64> = Vec::new();\n\
         \x20   v.resize(n, 0.0);\n\
         \x20   v\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-exa/src/setup.rs").is_empty(),
        "setup code is not on the hot path: {diags:?}"
    );
}

#[test]
fn r6_exempts_pre_sized_allocations() {
    let diags = lint(&[(
        "crates/sph-core/src/density.rs",
        "pub fn compute_density(n: usize) -> f64 {\n\
         \x20   let mut a: Vec<f64> = Vec::with_capacity(n);\n\
         \x20   a.push(1.0);\n\
         \x20   let b: Vec<f64> = vec![0.0; n];\n\
         \x20   a[0] + b[0]\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-core/src/density.rs").is_empty(),
        "with_capacity and vec![x; n] are deliberate, pre-sized: {diags:?}"
    );
}

#[test]
fn r6_fires_on_single_element_vec_macro() {
    let diags = lint(&[(
        "crates/sph-core/src/density.rs",
        "pub fn compute_density() -> Vec<u32> {\n\
         \x20   let stack: Vec<u32> = vec![0];\n\
         \x20   stack\n\
         }\n",
    )]);
    assert_eq!(
        rules_in(&diags, "crates/sph-core/src/density.rs"),
        vec![Rule::HotAlloc],
        "non-repeat vec![…] is an unsized hot-path allocation: {diags:?}"
    );
}

#[test]
fn r6_exempts_per_chunk_scratch_in_dispatch_closure() {
    let diags = lint(&[(
        "crates/sph-core/src/forces.rs",
        "pub fn compute_forces(xs: &[f64]) {\n\
         \x20   xs.par_chunks(256).for_each(|chunk| {\n\
         \x20       let mut scratch: Vec<f64> = Vec::new();\n\
         \x20       scratch.extend_from_slice(chunk);\n\
         \x20   });\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-core/src/forces.rs").is_empty(),
        "per-chunk scratch inside a dispatch closure is the recommended pattern: {diags:?}"
    );
}

#[test]
fn r6_exempts_collect_terminating_parallel_chain() {
    let diags = lint(&[(
        "crates/sph-core/src/gradients.rs",
        "pub fn compute_velocity_gradients(xs: &[f64]) -> Vec<f64> {\n\
         \x20   xs.par_iter().map(|x| x * 2.0).collect()\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-core/src/gradients.rs").is_empty(),
        "collect() reassembling a parallel chain is the ordered-reduce idiom: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// R7 reduce-taint
// ---------------------------------------------------------------------------

/// A `Simulation::step` front-end whose helpers live in a non-hot crate:
/// R2's crate whitelist never sees them, only reachability does.
const STEP_FILE: (&str, &str) = (
    "crates/sph-exa/src/simulation.rs",
    "pub struct Simulation;\n\
     impl Simulation {\n\
     \x20   pub fn step(&mut self, ws: &[f64]) -> f64 { crate::weights::rebalance(ws) }\n\
     }\n",
);

#[test]
fn r7_fires_on_bare_accumulation_reachable_from_step() {
    let diags = lint(&[
        STEP_FILE,
        (
            "crates/sph-exa/src/weights.rs",
            "pub fn rebalance(ws: &[f64]) -> f64 {\n\
             \x20   let mut acc = 0.0;\n\
             \x20   for &w in ws {\n\
             \x20       acc += w;\n\
             \x20   }\n\
             \x20   acc\n\
             }\n",
        ),
    ]);
    assert_eq!(
        rules_in(&diags, "crates/sph-exa/src/weights.rs"),
        vec![Rule::ReduceTaint],
        "bare float += on a trajectory-feeding path must fire: {diags:?}"
    );
}

#[test]
fn r7_fires_on_sum_and_additive_fold() {
    let diags = lint(&[
        STEP_FILE,
        (
            "crates/sph-exa/src/weights.rs",
            "pub fn rebalance(ws: &[f64]) -> f64 {\n\
             \x20   let a: f64 = ws.iter().sum();\n\
             \x20   let b = ws.iter().fold(0.0, |x, &y| x + y);\n\
             \x20   a + b\n\
             }\n",
        ),
    ]);
    assert_eq!(
        rules_in(&diags, "crates/sph-exa/src/weights.rs"),
        vec![Rule::ReduceTaint, Rule::ReduceTaint],
        "both the bare sum() and the additive fold must fire: {diags:?}"
    );
}

#[test]
fn r7_exempts_exact_integer_forms() {
    let diags = lint(&[
        STEP_FILE,
        (
            "crates/sph-exa/src/weights.rs",
            "pub fn rebalance(ws: &[f64]) -> f64 {\n\
             \x20   let mut n = 0usize;\n\
             \x20   for _w in ws {\n\
             \x20       n += 1;\n\
             \x20   }\n\
             \x20   let total: usize = ws.iter().map(|_| 1usize).sum::<usize>();\n\
             \x20   let worst = ws.iter().fold(f64::MIN, |a, &b| a.max(b));\n\
             \x20   (n + total) as f64 + worst\n\
             }\n",
        ),
    ]);
    assert!(
        rules_in(&diags, "crates/sph-exa/src/weights.rs").is_empty(),
        "counter increments, integer-turbofish sums and non-additive folds are exact: {diags:?}"
    );
}

#[test]
fn r7_quiet_when_not_reachable_from_trajectory() {
    let diags = lint(&[(
        "crates/sph-exa/src/report.rs",
        "pub fn summarize(ws: &[f64]) -> f64 {\n\
         \x20   let mut acc = 0.0;\n\
         \x20   for &w in ws {\n\
         \x20       acc += w;\n\
         \x20   }\n\
         \x20   acc\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-exa/src/report.rs").is_empty(),
        "post-hoc reporting does not feed trajectories: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// R8 env-determinism
// ---------------------------------------------------------------------------

#[test]
fn r8_fires_on_env_read_in_library_code() {
    let diags = lint(&[(
        "crates/sph-exa/src/config.rs",
        "pub fn threads() -> usize {\n\
         \x20   std::env::var(\"SPH_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n\
         }\n",
    )]);
    assert_eq!(
        rules_in(&diags, "crates/sph-exa/src/config.rs"),
        vec![Rule::EnvDeterminism],
        "library env reads must fire: {diags:?}"
    );
}

#[test]
fn r8_fires_on_thread_count_probes() {
    let diags = lint(&[(
        "crates/sph-exa/src/config.rs",
        "pub fn width() -> usize {\n\
         \x20   std::thread::available_parallelism().map_or(1, |n| n.get())\n\
         }\n",
    )]);
    assert_eq!(
        rules_in(&diags, "crates/sph-exa/src/config.rs"),
        vec![Rule::EnvDeterminism],
        "hardware thread-count probes are environment reads too: {diags:?}"
    );
}

#[test]
fn r8_quiet_in_binaries_and_shims() {
    let diags = lint(&[
        (
            "crates/sph-bench/src/bin/miniapp.rs",
            "fn main() {\n\
             \x20   let _ = std::env::var(\"SPH_THREADS\");\n\
             }\n",
        ),
        (
            "crates/shims/rayon/src/lib.rs",
            "pub fn default_threads() -> usize {\n\
             \x20   std::env::var(\"SPH_THREADS\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n\
             }\n",
        ),
    ]);
    assert!(
        diags.iter().all(|(_, r, _)| *r != Rule::EnvDeterminism),
        "binaries own their CLI surface and the shim IS the blessed reader: {diags:?}"
    );
}

#[test]
fn r8_blessed_in_sph_serve_library_but_still_fires_elsewhere() {
    let env_reader = "pub fn bind_addr() -> String {\n\
         \x20   std::env::var(\"SPH_SERVE_ADDR\").unwrap_or_default()\n\
         }\n";
    // The server's library half owns operational env surface…
    let diags = lint(&[("crates/sph-serve/src/server.rs", env_reader)]);
    assert!(
        diags.iter().all(|(_, r, _)| *r != Rule::EnvDeterminism),
        "sph-serve's operational env reads are blessed: {diags:?}"
    );
    // …while the identical read in any physics crate still trips R8.
    let diags = lint(&[("crates/sph-domain/src/config.rs", env_reader)]);
    assert_eq!(
        rules_in(&diags, "crates/sph-domain/src/config.rs"),
        vec![Rule::EnvDeterminism],
        "the carve-out must not leak beyond sph-serve: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Suppressions apply to semantic rules like any other rule
// ---------------------------------------------------------------------------

#[test]
fn semantic_findings_honor_inline_suppressions() {
    let diags = lint(&[(
        "crates/sph-core/src/density.rs",
        "pub fn compute_density() -> Vec<u32> {\n\
         \x20   // sph-lint: allow(hot-alloc) — fixture: deliberate one-off\n\
         \x20   let stack: Vec<u32> = vec![0];\n\
         \x20   stack\n\
         }\n",
    )]);
    assert!(
        rules_in(&diags, "crates/sph-core/src/density.rs").is_empty(),
        "a justified suppression must silence R6 (and count as used for S2): {diags:?}"
    );
}

#[test]
fn unused_semantic_suppression_trips_s2() {
    let diags = lint(&[(
        "crates/sph-exa/src/weights.rs",
        "// sph-lint: allow(reduce-taint) — fixture: nothing fires below\n\
         pub fn nothing_here() -> usize { 1 }\n",
    )]);
    assert_eq!(
        rules_in(&diags, "crates/sph-exa/src/weights.rs"),
        vec![Rule::UnusedSuppression],
        "an unused semantic-rule suppression must be flagged: {diags:?}"
    );
}
