//! Property tests of the item parser: on arbitrary token soup the parser
//! must not panic, item spans must be in-bounds and either disjoint or
//! properly nested (parents containing children), and every `fn` keyword
//! followed by a name must be covered by exactly one `Fn` item.

use proptest::prelude::*;
use sph_lint::items::{is_reserved, parse_items, Item, ItemKind};
use sph_lint::lexer::{lex, Token, TokenKind};

fn code_tokens(src: &str) -> Vec<Token> {
    lex(src).into_iter().filter(|t| !t.is_comment()).collect()
}

/// Spans are in-bounds and any two are disjoint or nested.
fn check_span_nesting(src: &str, items: &[Item]) {
    for it in items {
        assert!(it.span.0 <= it.span.1, "inverted span {:?} for {}", it.span, it.name);
        assert!(it.span.1 <= src.len(), "span {:?} out of bounds", it.span);
    }
    for (i, a) in items.iter().enumerate() {
        for b in items.iter().skip(i + 1) {
            let disjoint = a.span.1 <= b.span.0 || b.span.1 <= a.span.0;
            let a_in_b = b.span.0 <= a.span.0 && a.span.1 <= b.span.1;
            let b_in_a = a.span.0 <= b.span.0 && b.span.1 <= a.span.1;
            assert!(
                disjoint || a_in_b || b_in_a,
                "partially overlapping spans: {} {:?} vs {} {:?} in {src:?}",
                a.name,
                a.span,
                b.name,
                b.span
            );
        }
    }
}

/// Parent links point backwards and the parent's span contains the child.
fn check_parents(src: &str, items: &[Item]) {
    for (i, it) in items.iter().enumerate() {
        if let Some(p) = it.parent {
            assert!(p < i, "parent {p} not before child {i}");
            let parent = &items[p];
            assert!(
                parent.span.0 <= it.span.0 && it.span.1 <= parent.span.1,
                "child {} {:?} escapes parent {} {:?} in {src:?}",
                it.name,
                it.span,
                parent.name,
                parent.span
            );
        }
    }
}

/// Restates `Parser::fn_name`: does a named fn start at keyword index `k`?
fn fn_starts_at(src: &str, code: &[Token], k: usize) -> bool {
    let text = |j: usize| code.get(j).map(|t| t.text(src)).unwrap_or("");
    let is_ident = |j: usize| code.get(j).is_some_and(|t| t.kind == TokenKind::Ident);
    if is_ident(k + 1) && text(k + 1) == "r" && text(k + 2) == "#" && is_ident(k + 3) {
        return true;
    }
    is_ident(k + 1) && !is_reserved(text(k + 1))
}

/// Every named `fn` keyword token is the keyword of exactly one Fn item.
fn check_fn_coverage(src: &str, code: &[Token], items: &[Item]) {
    for (k, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text(src) != "fn" {
            continue;
        }
        let owners: Vec<&Item> =
            items.iter().filter(|it| it.kind == ItemKind::Fn && it.keyword_tok == k).collect();
        if fn_starts_at(src, code, k) {
            assert_eq!(
                owners.len(),
                1,
                "fn token at code index {k} covered by {} items in {src:?}",
                owners.len()
            );
            let it = owners[0];
            assert!(
                it.span.0 <= t.start && t.end <= it.span.1,
                "fn keyword {:?} outside its item span {:?} in {src:?}",
                (t.start, t.end),
                it.span
            );
        } else {
            assert!(owners.is_empty(), "unnamed fn token at {k} produced an item in {src:?}");
        }
    }
}

/// Body token ranges are well-formed and lie inside the item's byte span.
fn check_bodies(src: &str, code: &[Token], items: &[Item]) {
    for it in items {
        let Some((s, e)) = it.body else { continue };
        assert!(s <= e, "inverted body range {:?} for {}", it.body, it.name);
        assert!(e <= code.len(), "body range {:?} out of bounds", it.body);
        for t in &code[s..e] {
            assert!(
                it.span.0 <= t.start && t.end <= it.span.1,
                "body token {:?} escapes span {:?} of {} in {src:?}",
                (t.start, t.end),
                it.span,
                it.name
            );
        }
    }
}

fn check_all(src: &str) {
    let code = code_tokens(src);
    let items = parse_items(src, &code);
    check_span_nesting(src, &items);
    check_parents(src, &items);
    check_fn_coverage(src, &code, &items);
    check_bodies(src, &code, &items);
}

/// Item-flavoured fragments: headers, bodies, braces that do not balance,
/// raw identifiers, fn-pointer types, truncation bait.
const FRAGMENTS: &[&str] = &[
    "fn",
    "fn f",
    "fn f()",
    "fn f() {}",
    "fn r#match() {}",
    "fn f(g: fn(i32) -> i32)",
    "pub fn h() -> impl Iterator<Item = u8> { std::iter::empty() }",
    "impl",
    "impl T {",
    "impl Kernel for CubicSpline {",
    "impl<T: Clone> Grid<T> {",
    "trait K {",
    "trait K { fn w(&self); }",
    "mod m {",
    "mod m;",
    "use a::b::C;",
    "use a::{b, c};",
    "where",
    "for",
    "{",
    "}",
    "{}",
    "(",
    ")",
    ";",
    "->",
    "::",
    "<",
    ">",
    ">>",
    "#",
    "r",
    "x",
    "let x = 1;",
    "// fn commented_out() {}\n",
    "/* fn also_commented() {} */",
    "\"fn in_a_string() {}\"",
    "'a",
    "1.5e3",
    "\n",
    " ",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect::<Vec<_>>().join(" "))
}

fn byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #[test]
    fn fragment_soup_invariants_hold(src in fragment_soup()) {
        check_all(&src);
    }

    #[test]
    fn arbitrary_bytes_invariants_hold(src in byte_soup()) {
        check_all(&src);
    }
}

/// Pin the invariants on one realistic file too, not just soup.
#[test]
fn realistic_source_invariants_hold() {
    check_all(
        "use sph_math::Vec3;\n\
         pub struct CellGrid { n: usize }\n\
         impl CellGrid {\n\
             pub fn scan_one_image(&self, p: Vec3) -> usize {\n\
                 fn helper(x: usize) -> usize { x + 1 }\n\
                 helper(self.n)\n\
             }\n\
         }\n\
         pub trait Kernel { fn w(&self, q: f64) -> f64; }\n",
    );
}
