//! Tier-1 gate: the real workspace must lint clean. Every diagnostic is
//! either fixed or carries a justified inline suppression, so any failure
//! here is a newly introduced contract violation.

use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_diagnostics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/sph-lint");
    let diags = sph_lint::lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        diags.is_empty(),
        "sph-lint found {} unsuppressed diagnostic(s):\n{}",
        diags.len(),
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// The committed ratchet baseline must parse and stay empty: every finding
/// is fixed or suppressed at the source, never grandfathered silently.
#[test]
fn committed_baseline_is_empty() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/sph-lint");
    let text = std::fs::read_to_string(root.join("lint_baseline.json"))
        .expect("lint_baseline.json exists at the workspace root");
    let baseline = sph_lint::report::Baseline::parse(&text).expect("baseline parses");
    assert!(
        baseline.is_empty(),
        "lint_baseline.json has {} grandfathered entr(y/ies); the repo policy is zero",
        baseline.len()
    );
}
