//! Fixture tests: every rule must fire on a seeded violation and stay
//! quiet on the idiomatic alternative. Each fixture is an inline source
//! string linted under a controlled [`FileContext`], so the tests pin the
//! rule semantics independently of the workspace sweep.

use sph_lint::rules::Rule;
use sph_lint::{lint_source, FileContext};

/// A library file in a hot-path crate — every rule applies.
fn hot_ctx() -> FileContext {
    FileContext { crate_name: "sph-core".into(), is_binary: false, is_shim: false }
}

/// A library file in a non-hot-path crate — R2 does not apply.
fn warm_ctx() -> FileContext {
    FileContext { crate_name: "sph-ft".into(), is_binary: false, is_shim: false }
}

fn rules_hit(src: &str, ctx: &FileContext) -> Vec<Rule> {
    lint_source(src, ctx).into_iter().map(|d| d.rule).collect()
}

// --- R1: hash containers ------------------------------------------------

#[test]
fn r1_fires_on_hashmap_and_hashset() {
    let src = "use std::collections::HashMap;\n\
               pub fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
    let hits = rules_hit(src, &warm_ctx());
    assert!(hits.contains(&Rule::HashContainer), "HashMap must trip R1: {hits:?}");

    let src = "pub fn f() { let s = std::collections::HashSet::<u32>::new(); }\n";
    assert!(rules_hit(src, &warm_ctx()).contains(&Rule::HashContainer));
}

#[test]
fn r1_quiet_on_btree_and_in_tests() {
    let src = "use std::collections::BTreeMap;\n\
               pub fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());

    // The same violation inside #[cfg(test)] is exempt.
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n\
               \n    #[test]\n    fn t() { let _ = HashMap::<u32, u32>::new(); }\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn r1_quiet_on_identifiers_containing_hashmap() {
    // `MyHashMapLike` or a doc mention must not trip the rule.
    let src = "/// Not a HashMap.\npub struct MyHashMapLike;\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

// --- R2: raw accumulation ----------------------------------------------

#[test]
fn r2_fires_on_bare_accumulation_in_loop() {
    let src = "pub fn f(v: &[f64]) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for &x in v {\n        acc += x * 2.0;\n    }\n\
                   acc\n}\n";
    assert!(rules_hit(src, &hot_ctx()).contains(&Rule::RawAccumulation));
}

#[test]
fn r2_fires_on_iterator_sum() {
    let src = "pub fn f(v: &[f64]) -> f64 { v.iter().sum() }\n";
    assert!(rules_hit(src, &hot_ctx()).contains(&Rule::RawAccumulation));
}

#[test]
fn r2_quiet_outside_loops_and_outside_hot_crates() {
    // A single `+=` outside any loop is not an accumulation loop.
    let src = "pub fn f(mut a: f64, b: f64) -> f64 {\n    a += b;\n    a\n}\n";
    assert!(rules_hit(src, &hot_ctx()).is_empty());

    // The same loop in a non-hot-path crate is out of scope.
    let src = "pub fn f(v: &[f64]) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for &x in v {\n        acc += x;\n    }\n    acc\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn r2_quiet_on_counter_increment() {
    // `i += 1` is the idiomatic counter, not an FP reduction.
    let src = "pub fn f(v: &[f64]) -> usize {\n\
                   let mut n = 0;\n\
                   for &x in v {\n        if x > 0.0 {\n            n += 1;\n        }\n    }\n\
                   n\n}\n";
    assert!(rules_hit(src, &hot_ctx()).is_empty());
}

// --- R3: panic paths ----------------------------------------------------

#[test]
fn r3_fires_on_unwrap_expect_panic() {
    for snippet in [
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
        "pub fn f(o: Option<u32>) -> u32 { o.expect(\"present\") }\n",
        "pub fn f() { panic!(\"boom\"); }\n",
    ] {
        let hits = rules_hit(snippet, &warm_ctx());
        assert!(hits.contains(&Rule::PanicPath), "{snippet:?} must trip R3: {hits:?}");
    }
}

#[test]
fn r3_quiet_in_tests_and_binaries() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n\
               fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());

    let bin = FileContext { crate_name: "sph-bench".into(), is_binary: true, is_shim: false };
    let src = "fn main() { std::env::args().next().unwrap(); }\n";
    assert!(rules_hit(src, &bin).is_empty());
}

#[test]
fn r3_quiet_on_unwrap_or_family() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n\
               pub fn g(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 1) }\n\
               pub fn h(o: Option<u32>) -> u32 { o.unwrap_or_default() }\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

// --- R4: undocumented unsafe -------------------------------------------

#[test]
fn r4_fires_on_bare_unsafe() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert!(rules_hit(src, &warm_ctx()).contains(&Rule::UndocumentedUnsafe));
}

#[test]
fn r4_satisfied_by_safety_comment_or_doc_section() {
    let src = "pub fn f(p: *const u32) -> u32 {\n\
                   // SAFETY: caller guarantees `p` is valid and aligned.\n\
                   unsafe { *p }\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());

    let src = "/// Reads through a raw pointer.\n///\n/// # Safety\n///\n\
               /// `p` must be valid for reads.\n\
               pub unsafe fn f(p: *const u32) -> u32 {\n    *p\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn r4_applies_even_in_shims() {
    // Shims are exempt from everything EXCEPT the SAFETY-comment rule.
    let shim = FileContext { crate_name: "shims/rayon".into(), is_binary: false, is_shim: true };
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_hit(src, &shim), vec![Rule::UndocumentedUnsafe]);

    // ...and everything else stays quiet in a shim.
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(rules_hit(src, &shim).is_empty());
}

// --- R5: wall clock / threads ------------------------------------------

#[test]
fn r5_fires_on_instant_and_spawn() {
    for snippet in [
        "pub fn f() { let _t = std::time::Instant::now(); }\n",
        "pub fn f() { let _t = std::time::SystemTime::now(); }\n",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    ] {
        let hits = rules_hit(snippet, &warm_ctx());
        assert!(hits.contains(&Rule::WallClock), "{snippet:?} must trip R5: {hits:?}");
    }
}

#[test]
fn r5_quiet_in_profiler_crate() {
    let prof = FileContext { crate_name: "sph-profiler".into(), is_binary: false, is_shim: false };
    let src = "pub fn f() { let _t = std::time::Instant::now(); }\n";
    assert!(rules_hit(src, &prof).is_empty());
}

#[test]
fn r5_blessed_in_sph_serve_but_still_fires_elsewhere() {
    // The server context may read the clock and spawn workers…
    let serve = FileContext { crate_name: "sph-serve".into(), is_binary: false, is_shim: false };
    for snippet in [
        "pub fn f() { let _t = std::time::Instant::now(); }\n",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
    ] {
        assert!(rules_hit(snippet, &serve).is_empty(), "{snippet:?} is blessed in sph-serve");
    }
    // …and the identical source still trips R5 in every other library
    // context: the blessing is a context rule, not a rule change.
    for crate_name in ["sph-ft", "sph-exa", "sph-core", "sph-scenarios"] {
        let ctx = FileContext { crate_name: crate_name.into(), is_binary: false, is_shim: false };
        let src = "pub fn f() { let _t = std::time::Instant::now(); }\n";
        let hits = rules_hit(src, &ctx);
        assert!(hits.contains(&Rule::WallClock), "R5 must still fire in {crate_name}: {hits:?}");
    }
}

// --- Suppressions -------------------------------------------------------

#[test]
fn justified_suppression_silences_the_diagnostic() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n\
                   // sph-lint: allow(panic-path) — fixture: invariant checked by caller.\n\
                   o.unwrap()\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn trailing_suppression_covers_its_own_line() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n\
                   o.unwrap() // sph-lint: allow(panic-path) — fixture: checked by caller.\n\
               }\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn s1_fires_on_missing_justification_and_unknown_rule() {
    // No justification text at all.
    let src = "pub fn f(o: Option<u32>) -> u32 {\n\
                   // sph-lint: allow(panic-path)\n\
                   o.unwrap()\n}\n";
    let hits = rules_hit(src, &warm_ctx());
    // The suppression still masks its target (one clear message instead of
    // two), but S1 keeps the gate red until a justification is written.
    assert_eq!(hits, vec![Rule::UnjustifiedSuppression]);

    // Unknown rule slug.
    let src = "pub fn f() {\n\
                   // sph-lint: allow(made-up-rule) — plenty of justification here.\n\
                   let x = 1;\n    let _ = x;\n}\n";
    assert!(rules_hit(src, &warm_ctx()).contains(&Rule::UnjustifiedSuppression));
}

#[test]
fn s2_fires_on_unused_suppression() {
    let src = "pub fn f() -> u32 {\n\
                   // sph-lint: allow(panic-path) — fixture: nothing to suppress below.\n\
                   42\n}\n";
    assert_eq!(rules_hit(src, &warm_ctx()), vec![Rule::UnusedSuppression]);
}

#[test]
fn one_comment_can_suppress_multiple_rules() {
    let src = "pub fn f(v: &[f64], o: Option<f64>) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for &x in v {\n\
                       // sph-lint: allow(raw-accumulation, panic-path) — fixture: both at once.\n\
                       acc += x * o.unwrap();\n    }\n\
                   acc\n}\n";
    assert!(rules_hit(src, &hot_ctx()).is_empty());
}

// --- Tricky-source robustness ------------------------------------------

#[test]
fn violations_inside_strings_and_comments_do_not_fire() {
    let src = "pub fn f() -> &'static str {\n\
                   // This mentions HashMap and Instant::now() and .unwrap().\n\
                   \"HashMap::new().unwrap(); std::time::Instant::now()\"\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());

    let src = "pub fn f() -> &'static str {\n\
                   r#\"thread::spawn(|| panic!(\"x\"))\"#\n}\n";
    assert!(rules_hit(src, &warm_ctx()).is_empty());
}

#[test]
fn diagnostics_carry_one_based_positions() {
    let src = "pub fn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    let diags = lint_source(src, &warm_ctx());
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].line, 2);
    assert!(diags[0].col > 1);
}

// --- Rule metadata ------------------------------------------------------

#[test]
fn slugs_round_trip() {
    for rule in Rule::ALL {
        assert_eq!(Rule::from_slug(rule.slug()), Some(rule), "{rule:?}");
        assert!(!rule.describe().is_empty());
        assert!(rule.id().starts_with('R'));
    }
    // Meta rules are not suppressible.
    assert_eq!(Rule::from_slug("unjustified-suppression"), None);
    assert_eq!(Rule::from_slug("unused-suppression"), None);
}
