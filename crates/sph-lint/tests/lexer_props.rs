//! Property tests of the hand-rolled lexer: whatever bytes come in, the
//! lexer must not panic, must emit in-bounds char-aligned spans in strictly
//! increasing source order, and must account for every non-whitespace byte.

use proptest::prelude::*;
use sph_lint::lexer::{lex, Token};

/// Shared span invariants checked by every property below.
fn check_spans(src: &str, tokens: &[Token]) {
    let mut prev_end = 0usize;
    for t in tokens {
        assert!(t.start <= t.end, "inverted span {}..{}", t.start, t.end);
        assert!(t.end <= src.len(), "span {}..{} out of bounds", t.start, t.end);
        assert!(src.is_char_boundary(t.start), "start {} not a char boundary", t.start);
        assert!(src.is_char_boundary(t.end), "end {} not a char boundary", t.end);
        assert!(t.start >= prev_end, "overlapping spans at {}", t.start);
        // The text accessor must agree with the raw slice.
        assert_eq!(t.text(src), &src[t.start..t.end]);
        assert!(t.line >= 1, "lines are 1-based");
        assert!(t.col >= 1, "columns are 1-based");
        prev_end = t.end;
    }
}

/// Bytes not covered by any token must be whitespace (the only thing the
/// lexer is allowed to skip).
fn check_coverage(src: &str, tokens: &[Token]) {
    let mut covered = vec![false; src.len()];
    for t in tokens {
        for c in covered.iter_mut().take(t.end).skip(t.start) {
            *c = true;
        }
    }
    for (i, ch) in src.char_indices() {
        if !covered[i] {
            assert!(
                ch.is_whitespace(),
                "uncovered non-whitespace byte {ch:?} at offset {i} in {src:?}"
            );
        }
    }
}

/// Rust-flavoured fragments: realistic neighbours for the tricky cases
/// (raw strings, lifetimes, doc comments, nested block comments).
const FRAGMENTS: &[&str] = &[
    "fn",
    "let",
    "mut",
    "x",
    "HashMap",
    "unwrap",
    "'a",
    "'a'",
    "'\\n'",
    "\"str\"",
    "\"esc\\\"aped\"",
    "r\"raw\"",
    "r#\"raw # quote\"#",
    "0",
    "1.5",
    "1e-3",
    "0x_ff",
    "0..n",
    "1.max",
    "+=",
    "::",
    "->",
    "=>",
    "..=",
    "//",
    "// line comment\n",
    "/// doc\n",
    "//// not doc\n",
    "/* block */",
    "/* nested /* deeper */ out */",
    "/**/",
    "/*** plain */",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "#",
    "!",
    "r#ident",
    "b'x'",
    "b\"bytes\"",
    "\n",
    " ",
    "\t",
    "\u{3bb}",
    "𝕏",
    "é",
    "\"unterminated",
    "/* unterminated",
    "r#\"unterminated",
    "'",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..FRAGMENTS.len(), 0..40)
        .prop_map(|picks| picks.into_iter().map(|i| FRAGMENTS[i]).collect::<String>())
}

fn byte_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..120)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #[test]
    fn arbitrary_bytes_never_panic(src in byte_soup()) {
        let tokens = lex(&src);
        check_spans(&src, &tokens);
        check_coverage(&src, &tokens);
    }

    #[test]
    fn fragment_soup_never_panics(src in fragment_soup()) {
        let tokens = lex(&src);
        check_spans(&src, &tokens);
        check_coverage(&src, &tokens);
    }

    #[test]
    fn line_col_are_monotone(src in fragment_soup()) {
        let tokens = lex(&src);
        let mut prev = (1u32, 0u32);
        for t in &tokens {
            let pos = (t.line, t.col);
            assert!(
                t.line > prev.0 || (t.line == prev.0 && t.col > prev.1),
                "positions went backwards: {prev:?} then {pos:?} in {src:?}"
            );
            prev = pos;
        }
    }
}
