//! Head-to-head of the pre-pipeline hot path against the cell-list/CSR
//! pipeline on one 32³ Sedov derivative evaluation.
//!
//! The baseline is a faithful re-creation of the path this PR replaced:
//! a Morton octree rebuilt for the evaluation, a tree walk for **every**
//! round of every particle's smoothing-length iteration, a freshly
//! allocated neighbour `Vec` per particle, and the naive
//! clone/push/sort/dedup symmetric closure. The pipeline side is what the
//! drivers now run: half-radius cell grid, one distance-carrying gather
//! per particle with cached-candidate filtering for the remaining
//! h-rounds, flat CSR rows, and the reverse-CSR merge closure.
//!
//! Both paths execute the same kernel arithmetic in the same ascending-id
//! order, so their (ρ, a) outputs are bit-identical — asserted before any
//! timing, because a speedup between diverging results would be
//! meaningless.
//!
//! Runs single-threaded (the acceptance criterion is a ≥2× single-thread
//! step speedup) and writes the medians to `BENCH_neighbor.json` at the
//! workspace root, which CI uploads as an artifact.
// Wall-clock timing IS the measurement here; never feeds a trajectory.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use sph_core::config::SphConfig;
use sph_core::density::{compute_density, NeighborLists};
use sph_core::forces::compute_forces;
use sph_core::particles::ParticleSystem;
use sph_kernels::{Kernel, SUPPORT_RADIUS};
use sph_scenarios::{Resolution, Scenario, SedovScenario};
use sph_tree::{CellGrid, NeighborSearch, Octree, OctreeConfig, TraversalStats};

/// One derivative-evaluation timing: structure build, density (with the
/// h-iteration), symmetric closure + forces. Seconds each.
#[derive(Clone, Copy, Default)]
struct Phases {
    build: f64,
    density: f64,
    forces: f64,
}

impl Phases {
    fn total(&self) -> f64 {
        self.build + self.density + self.forces
    }
}

enum Backend {
    /// The seed hot path: octree walk per h-round, per-particle allocs,
    /// naive symmetric closure.
    SeedOctreeWalk,
    /// The production pipeline: cell grid + cached CSR gathers.
    CellList,
}

/// Faithful serial copy of the density/smoothing-length pass as it stood
/// before the pipeline: one `neighbors_within` tree walk per h-round, a
/// fresh row `Vec` per particle, separate `w`/`dw_dh` kernel calls.
/// Identical arithmetic in identical order to the pipeline's pass, so h,
/// ρ and Ω come out bit-equal — only the work done to get there differs.
fn seed_density(
    sys: &mut ParticleSystem,
    search: &NeighborSearch,
    kernel: &dyn Kernel,
    cfg: &SphConfig,
) -> Vec<Vec<u32>> {
    let target = cfg.target_neighbors as f64;
    let lo = (target * (1.0 - cfg.neighbor_tolerance)).floor() as usize;
    let hi = (target * (1.0 + cfg.neighbor_tolerance)).ceil() as usize;
    let mut h_cap = f64::INFINITY;
    for axis in 0..3 {
        if sys.periodicity.periodic[axis] {
            let span = sys.periodicity.domain.extent().component(axis);
            h_cap = h_cap.min(span * (0.5 - 1e-9) / SUPPORT_RADIUS);
        }
    }
    let mut stats = TraversalStats::default();
    let mut rows = Vec::with_capacity(sys.len());
    for i in 0..sys.len() {
        let xi = sys.x[i];
        let mut h = sys.h[i];
        // Per-particle allocation — the churn the pipeline removed.
        let mut neighbors: Vec<u32> = Vec::with_capacity(cfg.target_neighbors * 2);
        let mut iterations = 0usize;
        loop {
            neighbors.clear();
            search.neighbors_within(xi, SUPPORT_RADIUS * h, &mut neighbors, &mut stats);
            iterations += 1;
            let count = neighbors.len();
            if iterations >= cfg.max_h_iterations || (lo..=hi).contains(&count) {
                break;
            }
            let h_new = if count < 2 {
                (h * 1.5).min(h_cap)
            } else {
                let factor = (target / count as f64).cbrt();
                (h * 0.5 * (1.0 + factor)).min(h_cap)
            };
            if h_new == h {
                break;
            }
            h = h_new;
        }
        neighbors.sort_unstable();
        let mut rho = 0.0;
        let mut drho_dh = 0.0;
        for &j in &neighbors {
            let j = j as usize;
            let d = sys.periodicity.displacement(xi, sys.x[j]);
            let r = d.norm();
            rho += sys.m[j] * kernel.w(r, h);
            drho_dh += sys.m[j] * kernel.dw_dh(r, h);
        }
        let omega = if rho > 0.0 { 1.0 + h / (3.0 * rho) * drho_dh } else { 1.0 };
        sys.h[i] = h;
        sys.rho[i] = rho;
        sys.omega[i] = if cfg.grad_h { omega } else { 1.0 };
        rows.push(neighbors);
    }
    rows
}

/// The seed's symmetric closure: clone every row, push the reverse edges,
/// then sort + dedup each per-particle set — replaced in the pipeline by
/// the allocation-light reverse-CSR merge.
fn seed_symmetrize(rows: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let mut sets: Vec<Vec<u32>> = rows.to_vec();
    for (k, row) in rows.iter().enumerate() {
        for &j in row {
            let j = j as usize;
            if j != k {
                sets[j].push(k as u32);
            }
        }
    }
    for s in &mut sets {
        s.sort_unstable();
        s.dedup();
    }
    sets
}

/// Evaluate density + forces once through the chosen backend, returning
/// phase timings and a bit-fingerprint of the resulting (rho, a) state.
fn evaluate(sys: &mut ParticleSystem, cfg: &SphConfig, backend: &Backend) -> (Phases, u64) {
    let kernel = cfg.kernel.build();
    let active: Vec<u32> = (0..sys.len() as u32).collect();
    let mut ph = Phases::default();
    let eos = sph_core::IdealGas::new(cfg.gamma);

    match backend {
        Backend::SeedOctreeWalk => {
            let t0 = Instant::now();
            let tree = Octree::build(&sys.x, &sys.bounds(), OctreeConfig::default());
            let search = NeighborSearch::new(&tree, sys.periodicity);
            ph.build = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let rows = seed_density(sys, &search, kernel.as_ref(), cfg);
            ph.density = t1.elapsed().as_secs_f64();
            eos.apply(&sys.rho, &sys.u, &mut sys.p, &mut sys.cs);
            let t2 = Instant::now();
            let sym = NeighborLists::from_lists(seed_symmetrize(&rows));
            compute_forces(sys, &sym, kernel.as_ref(), cfg, &active);
            ph.forces = t2.elapsed().as_secs_f64();
        }
        Backend::CellList => {
            let t0 = Instant::now();
            let grid = CellGrid::for_radius(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
            ph.build = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let (lists, _) = compute_density(sys, &grid, kernel.as_ref(), cfg, &active);
            ph.density = t1.elapsed().as_secs_f64();
            eos.apply(&sys.rho, &sys.u, &mut sys.p, &mut sys.cs);
            let t2 = Instant::now();
            let sym = lists.symmetrized();
            compute_forces(sys, &sym, kernel.as_ref(), cfg, &active);
            ph.forces = t2.elapsed().as_secs_f64();
        }
    }

    let mut hash = 0xcbf29ce484222325u64;
    let mut mix = |v: f64| {
        hash ^= v.to_bits();
        hash = hash.wrapping_mul(0x100000001b3);
    };
    for i in 0..sys.len() {
        mix(sys.rho[i]);
        mix(sys.a[i].x);
        mix(sys.a[i].y);
        mix(sys.a[i].z);
    }
    (ph, hash)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    // Single thread: the acceptance criterion is serial speedup, and the
    // comparison should not be blurred by pool scheduling.
    rayon::ThreadPoolBuilder::new().num_threads(1).build_global().ok();

    let reps: usize = std::env::var("BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let scale: f64 = std::env::var("BENCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);

    let setup = SedovScenario.init(Resolution { scale });
    let n = setup.sys.len();
    println!("neighbor_pipeline: sedov n={n}, {reps} reps per backend, 1 thread");

    // Correctness first: the two backends must produce bit-identical state.
    let (_, fp_tree) = evaluate(&mut setup.sys.clone(), &setup.config, &Backend::SeedOctreeWalk);
    let (_, fp_grid) = evaluate(&mut setup.sys.clone(), &setup.config, &Backend::CellList);
    assert_eq!(fp_tree, fp_grid, "backends disagree — the speedup would be meaningless");

    let mut results: Vec<(&str, Phases)> = Vec::new();
    for (name, backend) in
        [("octree_walk", Backend::SeedOctreeWalk), ("cell_list", Backend::CellList)]
    {
        let mut builds = Vec::new();
        let mut densities = Vec::new();
        let mut forces = Vec::new();
        for _ in 0..reps {
            // A fresh clone each rep: the h-iteration must start from the
            // same initial guess, exactly as a driver step would.
            let mut sys = setup.sys.clone();
            let (ph, _) = evaluate(&mut sys, &setup.config, &backend);
            builds.push(ph.build);
            densities.push(ph.density);
            forces.push(ph.forces);
        }
        let med =
            Phases { build: median(builds), density: median(densities), forces: median(forces) };
        println!(
            "  {name:12}: total {:.4}s (build {:.4}s, density {:.4}s, forces {:.4}s)",
            med.total(),
            med.build,
            med.density,
            med.forces
        );
        results.push((name, med));
    }

    let tree_total = results[0].1.total();
    let grid_total = results[1].1.total();
    let speedup = tree_total / grid_total;
    println!("  speedup (octree_walk / cell_list): {speedup:.2}×");

    let json = format!(
        "{{\n  \"bench\": \"neighbor_pipeline\",\n  \"scenario\": \"sedov\",\n  \
         \"particles\": {n},\n  \"threads\": 1,\n  \"reps\": {reps},\n  \
         \"octree_walk\": {{ \"build_s\": {:.6}, \"density_s\": {:.6}, \"forces_s\": {:.6}, \
         \"total_s\": {:.6} }},\n  \
         \"cell_list\": {{ \"build_s\": {:.6}, \"density_s\": {:.6}, \"forces_s\": {:.6}, \
         \"total_s\": {:.6} }},\n  \"speedup\": {:.3}\n}}\n",
        results[0].1.build,
        results[0].1.density,
        results[0].1.forces,
        tree_total,
        results[1].1.build,
        results[1].1.density,
        results[1].1.forces,
        grid_total,
        speedup
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_neighbor.json");
    std::fs::write(out, json).expect("write BENCH_neighbor.json");
    println!("  wrote {out}");
}
