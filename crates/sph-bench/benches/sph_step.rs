//! Benchmarks of the SPH pipeline phases (Algorithm 1, step 3) and full
//! time-steps for each parent-code configuration — the measured (host)
//! side of the per-interaction cost calibration in EXPERIMENTS.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sph_bench::{build_evrard_sim, build_square_sim};
use sph_core::config::GradientScheme;
use sph_core::density::compute_density;
use sph_core::forces::compute_forces;
use sph_core::gradients::compute_iad_matrices;
use sph_core::volume::compute_volume_elements;
use sph_kernels::SUPPORT_RADIUS;
use sph_parents::{changa, sphflow, sphynx};
use sph_tree::CellGrid;

const N: usize = 8_000;

fn bench_density_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_pass");
    group.sample_size(20);
    for setup in [sphynx(), changa(), sphflow()] {
        let sim = build_square_sim(&setup, N);
        let mut sys = sim.sys.clone();
        let cfg = sim.config;
        let kernel = cfg.kernel.build();
        let grid = CellGrid::for_radius(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        group.bench_function(setup.name, |b| {
            b.iter(|| black_box(compute_density(&mut sys, &grid, kernel.as_ref(), &cfg, &active).1))
        });
    }
    group.finish();
}

fn bench_force_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_pass");
    group.sample_size(20);
    for setup in [sphynx(), sphflow()] {
        let sim = build_square_sim(&setup, N);
        let mut sys = sim.sys.clone();
        let cfg = sim.config;
        let kernel = cfg.kernel.build();
        let grid = CellGrid::for_radius(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
        let active: Vec<u32> = (0..sys.len() as u32).collect();
        let (lists, _) = compute_density(&mut sys, &grid, kernel.as_ref(), &cfg, &active);
        compute_volume_elements(&mut sys, &lists, kernel.as_ref(), &cfg, &active);
        if cfg.gradients == GradientScheme::Iad {
            compute_iad_matrices(&mut sys, &lists, kernel.as_ref(), &active);
        }
        let eos = sph_core::IdealGas::new(cfg.gamma);
        eos.apply(&sys.rho, &sys.u, &mut sys.p, &mut sys.cs);
        let sym = lists.symmetrized();
        group.bench_function(setup.name, |b| {
            b.iter(|| black_box(compute_forces(&mut sys, &sym, kernel.as_ref(), &cfg, &active)))
        });
    }
    group.finish();
}

fn bench_full_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step");
    group.sample_size(10);
    group.bench_function("square_sphflow", |b| {
        b.iter_with_setup(
            || build_square_sim(&sphflow(), 4_000),
            |mut sim| black_box(sim.step().expect("stable step")),
        )
    });
    group.bench_function("evrard_sphynx_gravity", |b| {
        b.iter_with_setup(
            || build_evrard_sim(&sphynx(), 4_000, 1),
            |mut sim| black_box(sim.step().expect("stable step")),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_density_pass, bench_force_pass, bench_full_steps);
criterion_main!(benches);
