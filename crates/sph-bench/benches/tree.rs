//! Benchmarks of the tree substrate: build (Algorithm 1, step 1),
//! neighbour search (step 2) and the Barnes–Hut gravity walk (step 4).
//!
//! The tree build bench is the ablation behind the Fig. 4 finding: the
//! parallel Morton sort is what replaces SPHYNX 1.3.1's serial build.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};
use sph_tree::{
    GravityConfig, GravitySolver, MultipoleOrder, NeighborSearch, Octree, OctreeConfig,
    TraversalStats,
};

fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    for &n in &[10_000usize, 50_000] {
        let pts = random_points(n, 1);
        for (parallel, tag) in [(false, "serial_sort"), (true, "parallel_sort")] {
            group.bench_with_input(BenchmarkId::new(tag, n), &pts, |b, pts| {
                b.iter(|| {
                    black_box(Octree::build(
                        pts,
                        &Aabb::unit(),
                        OctreeConfig { max_leaf_size: 32, parallel_sort: parallel },
                    ))
                })
            });
        }
    }
    group.finish();
}

fn bench_neighbor_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_search");
    let pts = random_points(50_000, 2);
    let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
    let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
    // Radius tuned for ~100 neighbours — the paper's target count.
    let radius = (100.0_f64 / 50_000.0 * 3.0 / (4.0 * std::f64::consts::PI)).cbrt();
    group.bench_function("single_query_100nb", |b| {
        let mut out = Vec::with_capacity(128);
        let mut stats = TraversalStats::default();
        b.iter(|| {
            out.clear();
            search.neighbors_within(black_box(Vec3::splat(0.5)), radius, &mut out, &mut stats);
            black_box(out.len())
        })
    });
    group.bench_function("batch_1000_queries", |b| {
        let centers: Vec<Vec3> = pts[..1000].to_vec();
        let radii = vec![radius; 1000];
        b.iter(|| black_box(search.batch_neighbors(&centers, &radii).1))
    });
    group.finish();
}

fn bench_gravity(c: &mut Criterion) {
    let mut group = c.benchmark_group("gravity");
    group.sample_size(20);
    let pts = random_points(20_000, 3);
    let masses = vec![1.0 / 20_000.0; 20_000];
    let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
    for (order, tag) in
        [(MultipoleOrder::Monopole, "monopole"), (MultipoleOrder::Quadrupole, "quadrupole")]
    {
        let solver = GravitySolver::new(
            &tree,
            &masses,
            GravityConfig { g: 1.0, theta: 0.5, softening: 1e-3, order },
        );
        group.bench_function(format!("walk_1000_targets_{tag}"), |b| {
            b.iter(|| {
                let mut stats = TraversalStats::default();
                let mut acc = 0.0;
                for i in (0..1000).map(|k| k * 20) {
                    acc += solver.field_at(pts[i], Some(i as u32), &mut stats).potential;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_build, bench_neighbor_search, bench_gravity);
criterion_main!(benches);
