//! Micro-benchmarks of the interpolation kernels (Table 1/2 "Kernel").
//!
//! Quantifies the per-evaluation cost differences behind the calibrated
//! cost models: the sinc family (SPHYNX) pays transcendental functions per
//! call where the spline/Wendland kernels are pure polynomials.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sph_kernels::KernelKind;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    let qs: Vec<f64> = (0..1024).map(|i| i as f64 * (2.0 / 1024.0)).collect();
    for kind in KernelKind::all() {
        let kernel = kind.build();
        group.bench_function(kernel.name(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &q in &qs {
                    acc += kernel.w_shape(black_box(q)) + kernel.dw_shape(black_box(q));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_kernel_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_grad_w");
    let kernel = KernelKind::Sinc(5).build();
    let rij = sph_math::Vec3::new(0.03, 0.04, 0.0);
    group.bench_function("sinc5_grad", |b| {
        b.iter(|| black_box(kernel.grad_w(black_box(rij), black_box(0.1))))
    });
    let kernel = KernelKind::WendlandC2.build();
    group.bench_function("wendland_c2_grad", |b| {
        b.iter(|| black_box(kernel.grad_w(black_box(rij), black_box(0.1))))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_kernel_gradients);
criterion_main!(benches);
