//! Thread scaling of one full SPH time-step on the 10k-particle square
//! patch — the measured side of the hybrid (threads-per-rank) term of the
//! cluster step model.
//!
//! The `sph_step_threads/t{N}` medians give the in-rank speedup `S(N)`;
//! feeding `efficiency = (S − 1)/(N − 1)` into
//! `MachineModel::with_threads(N, efficiency)` makes the modelled scaling
//! curves reflect what this pool actually delivers. The acceptance bar for
//! the parallel rayon shim is `S(4) ≥ 1.5` on this benchmark, with the
//! determinism suite guaranteeing the *results* are bit-identical at every
//! thread count.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sph_bench::build_square_sim;
use sph_parents::sphflow;

const N: usize = 10_000;

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sph_step_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        rayon::ThreadPoolBuilder::new().num_threads(threads).build_global().unwrap();
        group.bench_function(format!("square10k_t{threads}"), |b| {
            b.iter_with_setup(
                || build_square_sim(&sphflow(), N),
                |mut sim| black_box(sim.step().expect("stable step")),
            )
        });
    }
    // Reset to the SPH_THREADS / hardware default for any later groups.
    rayon::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
