//! Benchmarks of the domain-decomposition substrate (Table 3/4 rows) and
//! the checkpoint codec — the remaining cost centres of a distributed
//! step (decompose, exchange, checkpoint).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sph_domain::{halo_sets, orb_partition, sfc_partition, SfcKind};
use sph_ft::codec::{decode, encode};
use sph_math::{Aabb, Periodicity, SplitMix64, Vec3};

fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_50k_64ranks");
    let pts = random_points(50_000, 1);
    group.bench_function("sfc_morton", |b| {
        b.iter(|| black_box(sfc_partition(&pts, &Aabb::unit(), 64, SfcKind::Morton, &[])))
    });
    group.bench_function("sfc_hilbert", |b| {
        b.iter(|| black_box(sfc_partition(&pts, &Aabb::unit(), 64, SfcKind::Hilbert, &[])))
    });
    group.bench_function("orb", |b| b.iter(|| black_box(orb_partition(&pts, 64, &[]))));
    group.finish();
}

fn bench_halo_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("halo_sets_20k");
    group.sample_size(20);
    let pts = random_points(20_000, 2);
    let per = Periodicity::open(Aabb::unit());
    for &ranks in &[16usize, 128] {
        let d = orb_partition(&pts, ranks, &[]);
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &d, |b, d| {
            b.iter(|| black_box(halo_sets(&pts, d, 0.05, &per)))
        });
    }
    group.finish();
}

fn bench_checkpoint_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpoint_codec_50k");
    group.sample_size(20);
    let n = 50_000;
    let pts = random_points(n, 3);
    let sys = sph_core::ParticleSystem::new(
        pts,
        vec![Vec3::ZERO; n],
        vec![1.0 / n as f64; n],
        vec![0.5; n],
        0.05,
        Periodicity::open(Aabb::unit()),
    );
    group.bench_function("encode", |b| b.iter(|| black_box(encode(&sys))));
    let bytes = encode(&sys);
    group.bench_function("decode", |b| b.iter(|| black_box(decode(&bytes).unwrap())));
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_halo_sets, bench_checkpoint_codec);
criterion_main!(benches);
