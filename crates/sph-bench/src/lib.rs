//! Shared harness code for the experiment binaries.
//!
//! Every table and figure of the paper has a regenerator binary in
//! `src/bin/`; this library holds what they share: scenario builders at a
//! configurable scale, the code-setup → simulation wiring, and the
//! experiment-scale switch (`SPH_EXA_FULL=1` runs paper scale — 10⁶
//! particles, 20 steps, 1 536 cores — the default is CI-sized with the
//! same shape).

use sph_cluster::{MachineModel, ScalingConfig, ScalingRow, StepModelConfig};
use sph_core::config::SphConfig;
use sph_core::timestep::TimeStepError;
use sph_exa::{Simulation, SimulationBuilder};
use sph_parents::{CodeSetup, Scenario};
use sph_scenarios::{evrard_collapse, square_patch, EvrardConfig, SquarePatchConfig};

/// Experiment scale: paper size or CI size.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Target particle count per test.
    pub particles: usize,
    /// Time-steps to run and average over.
    pub steps: usize,
    /// Largest core count on the x-axis.
    pub max_cores: usize,
}

impl ExperimentScale {
    /// Paper scale: 10⁶ particles, 20 steps, up to 1 536 cores.
    pub fn paper() -> Self {
        ExperimentScale { particles: 1_000_000, steps: 20, max_cores: 1536 }
    }

    /// CI scale: small enough for seconds-level runs, same shape.
    pub fn ci() -> Self {
        ExperimentScale { particles: 20_000, steps: 4, max_cores: 1536 }
    }

    /// `SPH_EXA_FULL=1` selects paper scale; `SPH_EXA_PARTICLES`,
    /// `SPH_EXA_STEPS` override individual knobs.
    pub fn from_env() -> Self {
        // sph-lint: allow(env-determinism) — experiment-scale knob, read
        // once by the bench harness before any physics; the chosen scale
        // is stamped into the result header, never into a trajectory.
        let mut scale = if std::env::var("SPH_EXA_FULL").as_deref() == Ok("1") {
            Self::paper()
        } else {
            Self::ci()
        };
        // sph-lint: allow(env-determinism) — same scale knob as above.
        if let Ok(n) = std::env::var("SPH_EXA_PARTICLES") {
            if let Ok(n) = n.parse() {
                scale.particles = n;
            }
        }
        // sph-lint: allow(env-determinism) — same scale knob as above.
        if let Ok(s) = std::env::var("SPH_EXA_STEPS") {
            if let Ok(s) = s.parse() {
                scale.steps = s;
            }
        }
        scale
    }
}

/// Build the rotating-square-patch simulation for a code setup at the
/// requested particle count (nx = nz = ∛n, as the paper's 100³).
/// Gravity is off — the square patch is a pure hydrodynamics test.
pub fn build_square_sim(setup: &CodeSetup, particles: usize) -> Simulation {
    let nx = (particles as f64).cbrt().round().max(8.0) as usize;
    let cfg = SquarePatchConfig { nx, nz: nx, gamma: setup.sph.gamma, ..Default::default() };
    let sys = square_patch(&cfg);
    let sph = SphConfig { gamma: cfg.gamma, ..setup.sph };
    // sph-lint: allow(panic-path) — bench harness: the scenario builder
    // emits a valid system by construction, and the regenerator binaries
    // want a loud crash, not a threaded error, if that ever breaks.
    SimulationBuilder::new(sys).config(sph).build().expect("valid square-patch simulation")
}

/// Build the Evrard-collapse simulation for a code setup.
/// Panics if the setup has no self-gravity (SPH-flow — Table 5 excludes
/// it from this test).
pub fn build_evrard_sim(setup: &CodeSetup, particles: usize, seed: u64) -> Simulation {
    let gravity = setup.gravity.unwrap_or_else(|| {
        // sph-lint: allow(panic-path) — documented contract (see doc
        // comment): asking SPH-flow for self-gravity is a programming
        // error in the wiring, mirroring Table 5's exclusion of the code.
        panic!("{} cannot run the Evrard collapse (no self-gravity)", setup.name)
    });
    let cfg = EvrardConfig { n_target: particles, seed, ..Default::default() };
    let sys = evrard_collapse(&cfg);
    SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(gravity)
        .build()
        // sph-lint: allow(panic-path) — bench harness: scenario builders
        // emit valid systems by construction; a crash here is a bug, not
        // a state the regenerator binaries should have to handle.
        .expect("valid Evrard simulation")
}

/// Build the simulation for (code, scenario) and the matching step-model
/// configuration for `machine`.
pub fn wire_experiment(
    setup: &CodeSetup,
    scenario: Scenario,
    machine: MachineModel,
    scale: ExperimentScale,
) -> (Simulation, StepModelConfig) {
    let sim = match scenario {
        Scenario::SquarePatch => build_square_sim(setup, scale.particles),
        Scenario::Evrard => build_evrard_sim(setup, scale.particles, 42),
    };
    let model = StepModelConfig {
        partitioner: setup.partitioner,
        balancing: setup.balancing,
        machine,
        cost: setup.cost_for(scenario),
    };
    (sim, model)
}

/// Run one strong-scaling panel (one line of Figs. 1–3).
/// Fails if the underlying physics evolution fails.
pub fn run_scaling_panel(
    setup: &CodeSetup,
    scenario: Scenario,
    machine: MachineModel,
    scale: ExperimentScale,
) -> Result<Vec<ScalingRow>, TimeStepError> {
    let (mut sim, model) = wire_experiment(setup, scenario, machine, scale);
    let mut cfg = ScalingConfig::paper_sweep(scale.max_cores);
    cfg.steps = scale.steps;
    let (rows, _) = sph_cluster::scaling_experiment(&mut sim, &model, &cfg)?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_cluster::piz_daint;
    use sph_parents::{sphflow, sphynx};

    #[test]
    fn scale_from_env_defaults_to_ci() {
        // (Environment may carry overrides in dev shells; just check sanity.)
        let s = ExperimentScale::from_env();
        assert!(s.particles >= 1000);
        assert!(s.steps >= 1);
    }

    #[test]
    fn square_sim_builds_for_every_code() {
        for setup in [sphynx(), sph_parents::changa(), sphflow()] {
            let sim = build_square_sim(&setup, 1728);
            assert_eq!(sim.sys.len(), 12 * 12 * 12);
            assert!(sim.gravity.is_none(), "{}: square patch must be hydro-only", setup.name);
        }
    }

    #[test]
    fn evrard_sim_builds_for_gravity_codes() {
        let sim = build_evrard_sim(&sphynx(), 2000, 1);
        assert!(sim.gravity.is_some());
        assert!(sim.sys.len() > 1000);
    }

    #[test]
    #[should_panic]
    fn evrard_rejects_sphflow() {
        let _ = build_evrard_sim(&sphflow(), 2000, 1);
    }

    #[test]
    fn scaling_panel_smoke() {
        let scale = ExperimentScale { particles: 1500, steps: 1, max_cores: 48 };
        let rows =
            run_scaling_panel(&sphflow(), Scenario::SquarePatch, piz_daint(), scale).unwrap();
        assert_eq!(rows.len(), 3); // 12, 24, 48
        assert!(rows[0].mean_step_time > 0.0);
    }
}
