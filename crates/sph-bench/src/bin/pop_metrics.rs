//! Regenerate the §5.2 POP efficiency analysis:
//!
//! "While the communication efficiency and computation scalability are
//! close to ideal, the measured global efficiency steadily decreases from
//! 48 cores to 192 cores. Most of the efficiency loss comes from an
//! increased load imbalance."
//!
//! ```text
//! cargo run --release -p sph-bench --bin pop_metrics
//! cargo run --release -p sph-bench --bin pop_metrics -- --code sphynx --test evrard
//! ```

use sph_bench::{wire_experiment, ExperimentScale};
use sph_cluster::tracegen::{step_trace, PhaseProfile};
use sph_cluster::{model_step, piz_daint, StepWorkload};
use sph_parents::{changa, sphflow, sphynx, CodeSetup, Scenario};
use sph_profiler::pop_metrics;

fn analyse(setup: &CodeSetup, scenario: Scenario, scale: ExperimentScale) {
    let name = match scenario {
        Scenario::SquarePatch => "Square",
        Scenario::Evrard => "Evrard",
    };
    println!("=== POP efficiency: {} / {name}, Piz Daint model ===", setup.name);
    let (mut sim, model) = wire_experiment(setup, scenario, piz_daint(), scale);
    for _ in 0..scale.steps.min(2) {
        sim.step().expect("stable step");
    }
    let work = sim.per_particle_work().to_vec();
    let zeros = vec![0.0; sim.sys.len()];
    let workload = StepWorkload {
        positions: &sim.sys.x,
        sph_work: &work,
        gravity_work: &zeros,
        interaction_radius: 2.0 * sim.sys.max_h(),
        periodicity: sim.sys.periodicity,
        bounds: sim.sys.bounds(),
    };
    let profile = match scenario {
        Scenario::Evrard => {
            PhaseProfile { serial_tree: setup.serial_tree, ..PhaseProfile::sphynx_evrard() }
        }
        Scenario::SquarePatch => PhaseProfile::hydro_only(setup.serial_tree),
    };
    // Reference (lowest core count) total useful time for CompScal.
    let mut reference_useful: Option<f64> = None;
    println!("  cores  LB      CommE   ParE    CompScal  GlobalE");
    for cores in [12usize, 24, 48, 96, 192, 384] {
        let timing = model_step(&workload, cores, &model, Some(&work));
        let trace = step_trace(&timing, &profile);
        let m = pop_metrics(&trace, reference_useful);
        if reference_useful.is_none() {
            reference_useful = Some(trace.total_useful());
        }
        println!(
            "  {cores:5}  {:5.1}%  {:5.1}%  {:5.1}%  {:7.1}%  {:6.1}%",
            m.load_balance * 100.0,
            m.communication_efficiency * 100.0,
            m.parallel_efficiency * 100.0,
            m.computation_scalability * 100.0,
            m.global_efficiency * 100.0
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let pick = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.to_lowercase())
    };
    let code = pick("--code");
    let test = pick("--test");
    let scale = ExperimentScale::from_env();
    println!(
        "POP metrics sweep ({} particles; paper quote: global efficiency decreases 48→192 \
         cores, dominated by load imbalance)\n",
        scale.particles
    );
    for (setup, key) in [(sphynx(), "sphynx"), (changa(), "changa"), (sphflow(), "sphflow")] {
        if code.as_deref().is_some_and(|c| c != key) {
            continue;
        }
        if test.as_deref() != Some("evrard") {
            analyse(&setup, Scenario::SquarePatch, scale);
        }
        if test.as_deref() != Some("square") && setup.supports_evrard() {
            analyse(&setup, Scenario::Evrard, scale);
        }
    }
}
