//! Weak scaling — the experiment §5.2 names as unexplored future work:
//! "A factor that has not yet been explored is the weak scaling of these
//! codes, which is usually the regime in which they operate in production
//! runs. This is part of ongoing analysis work."
//!
//! ```text
//! cargo run --release -p sph-bench --bin weak_scaling
//! cargo run --release -p sph-bench --bin weak_scaling -- --per-core 2000
//! ```
//!
//! The problem grows with the machine so particles/core stays fixed; a
//! flat time-per-step line is ideal. Run for each parent code on the
//! square patch (the test all three support).

use sph_bench::build_square_sim;
use sph_cluster::scaling::{render_weak_scaling_table, weak_scaling_experiment};
use sph_cluster::{piz_daint, StepModelConfig};
use sph_parents::{changa, sphflow, sphynx, Scenario};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_core: usize = args
        .iter()
        .position(|a| a == "--per-core")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let steps: usize =
        std::env::var("SPH_EXA_STEPS").ok().and_then(|s| s.parse().ok()).unwrap_or(2);
    let core_counts = [12usize, 24, 48, 96];
    println!(
        "weak scaling, {per_core} particles/core, cores {core_counts:?}, {steps} steps \
         (the §5.2 'production regime' experiment)\n"
    );
    for setup in [sphynx(), changa(), sphflow()] {
        let model = StepModelConfig {
            partitioner: setup.partitioner,
            balancing: setup.balancing,
            machine: piz_daint(),
            cost: setup.cost_for(Scenario::SquarePatch),
        };
        let rows = weak_scaling_experiment(
            |n| build_square_sim(&setup, n),
            &model,
            &core_counts,
            per_core,
            steps,
        )
        .expect("physics evolution stayed stable");
        println!(
            "{}",
            render_weak_scaling_table(
                &format!("{} (square patch, Piz Daint model)", setup.name),
                &rows
            )
        );
    }
}
