//! Ablation studies for the design choices DESIGN.md §5 calls out.
//!
//! ```text
//! cargo run --release -p sph-bench --bin ablations
//! ```
//!
//! 1. Domain decomposition: static slabs vs SFC (Morton/Hilbert) vs ORB
//!    on the clustered Evrard distribution;
//! 2. Load balancing: static vs dynamic under skewed per-particle cost;
//! 3. Time-stepping: global vs individual block steps on the Evrard core;
//! 4. Gradients: IAD vs kernel derivatives — linear-field accuracy;
//! 5. Checkpointing: single-level vs multilevel under failure injection.
// CLI surface: wall-clock progress timing only; never feeds a trajectory.
#![allow(clippy::disallowed_methods)]

use sph_bench::{build_evrard_sim, ExperimentScale};
use sph_cluster::{
    model_step, piz_daint, CostModel, LoadBalancing, Partitioner, StepModelConfig, StepWorkload,
};
use sph_core::config::{GradientScheme, TimeStepping};
use sph_core::density::compute_density;
use sph_core::gradients::{compute_iad_matrices, scalar_gradient};
use sph_core::volume::compute_volume_elements;
use sph_domain::SfcKind;
use sph_ft::{simulate_run, FailureInjector, MultilevelConfig};
use sph_kernels::SUPPORT_RADIUS;
use sph_math::Vec3;
use sph_parents::sphynx;
use sph_tree::CellGrid;

fn decomposition_ablation(sim: &sph_exa::Simulation) {
    println!("--- ablation 1+2: decomposition × balancing (Evrard distribution) ---");
    let work = sim.per_particle_work().to_vec();
    let zeros = vec![0.0; sim.sys.len()];
    let workload = StepWorkload {
        positions: &sim.sys.x,
        sph_work: &work,
        gravity_work: &zeros,
        interaction_radius: 2.0 * sim.sys.max_h(),
        periodicity: sim.sys.periodicity,
        bounds: sim.sys.bounds(),
    };
    println!("  partitioner        balancing  LB      halo    step(s)");
    for (partitioner, pname) in [
        (Partitioner::Slab { axis: 0 }, "slab (SPHYNX)"),
        (Partitioner::Sfc(SfcKind::Morton), "SFC Morton"),
        (Partitioner::Sfc(SfcKind::Hilbert), "SFC Hilbert"),
        (Partitioner::Orb, "ORB (SPH-flow)"),
    ] {
        for (balancing, bname) in
            [(LoadBalancing::Static, "static"), (LoadBalancing::Dynamic, "dynamic")]
        {
            let cfg = StepModelConfig {
                partitioner,
                balancing,
                machine: piz_daint(),
                cost: CostModel::default(),
            };
            let t = model_step(&workload, 96, &cfg, Some(&work));
            println!(
                "  {pname:18} {bname:9}  {:5.1}%  {:6}  {:.4}",
                t.load_balance() * 100.0,
                t.halo_volume,
                t.total()
            );
        }
    }
    println!();
}

fn timestepping_ablation(particles: usize) {
    println!("--- ablation 3: global vs individual time-stepping (Evrard) ---");
    for (ts, name) in [
        (TimeStepping::Global, "global (SPHYNX)"),
        (TimeStepping::Individual { max_rungs: 6 }, "individual (ChaNGa)"),
    ] {
        let mut setup = sphynx();
        setup.sph.time_stepping = ts;
        let mut sim = build_evrard_sim(&setup, particles, 42);
        let mut interactions = 0u64;
        let mut active = 0.0;
        let mut simulated = 0.0;
        let steps = 3;
        for _ in 0..steps {
            let r = sim.step().expect("stable step");
            interactions += r.stats.sph_interactions + r.stats.gravity.total_interactions();
            active += r.active_fraction;
            simulated += r.dt;
        }
        println!(
            "  {name:22}: {:.3e} interactions for {simulated:.4} time units \
             (mean active fraction {:.2})",
            interactions as f64,
            active / steps as f64
        );
    }
    println!();
}

fn gradient_ablation(sim: &sph_exa::Simulation) {
    println!("--- ablation 4: IAD vs kernel-derivative gradients (linear field) ---");
    let mut sys = sim.sys.clone();
    let cfg = sim.config;
    let grid = CellGrid::for_radius(&sys.x, sys.periodicity, SUPPORT_RADIUS * sys.max_h());
    let kernel = cfg.kernel.build();
    let active: Vec<u32> = (0..sys.len() as u32).collect();
    let (lists, _) = compute_density(&mut sys, &grid, kernel.as_ref(), &cfg, &active);
    compute_volume_elements(&mut sys, &lists, kernel.as_ref(), &cfg, &active);
    compute_iad_matrices(&mut sys, &lists, kernel.as_ref(), &active);
    let a = Vec3::new(1.0, -2.0, 0.5);
    let f: Vec<f64> = sys.x.iter().map(|&p| a.dot(p)).collect();
    for (scheme, name) in [
        (GradientScheme::Iad, "IAD (SPHYNX)"),
        (GradientScheme::KernelDerivative, "kernel derivatives"),
    ] {
        let start = std::time::Instant::now();
        let grads = scalar_gradient(&sys, &lists, kernel.as_ref(), scheme, &active, &f);
        let dt = start.elapsed().as_secs_f64();
        // Interior error only (surface particles lack full support).
        let com: Vec3 = sys.x.iter().fold(Vec3::ZERO, |acc, &p| acc + p) / sys.len() as f64;
        let mut err = 0.0;
        let mut count = 0;
        for (i, g) in grads.iter().enumerate() {
            if (sys.x[i] - com).norm() < 0.5 {
                err += (*g - a).norm() / a.norm();
                count += 1;
            }
        }
        println!(
            "  {name:20}: mean interior error {:.2e} ({count} particles, {dt:.3}s)",
            err / count.max(1) as f64
        );
    }
    println!();
}

fn checkpoint_ablation() {
    println!("--- ablation 5: single-level vs multilevel checkpointing ---");
    let steps = 2000u64;
    let step_time = 1.0;
    for (cfg, name) in [
        (MultilevelConfig::single_level(step_time, 100), "single-level (PFS only)"),
        (MultilevelConfig::three_tier(step_time), "multilevel (L1/L2/L3)"),
    ] {
        let mut wall = 0.0;
        let mut failures = 0;
        let trials = 5;
        for seed in 0..trials {
            let mut inj = FailureInjector::new(150.0, 0.15, 0.02, seed);
            let out = simulate_run(&cfg, &mut inj, steps, step_time);
            wall += out.wall_clock;
            failures += out.failures;
        }
        println!(
            "  {name:26}: mean wall-clock {:.0}s for {steps} steps ({} failures over {trials} trials, overhead {:.2}×)",
            wall / trials as f64,
            failures,
            wall / trials as f64 / (steps as f64 * step_time)
        );
    }
    println!();
}

fn main() {
    let scale = ExperimentScale::from_env();
    let particles = scale.particles.min(20_000);
    println!("ablation studies at {particles} particles\n");
    let setup = sphynx();
    let mut sim = build_evrard_sim(&setup, particles, 42);
    sim.step().expect("stable step");
    decomposition_ablation(&sim);
    timestepping_ablation(particles.min(5_000));
    gradient_ablation(&sim);
    checkpoint_ablation();
}
