//! Run every registered scenario through the validation harness and
//! emit per-scenario `ValidationReport`s as JSON — the machine-readable
//! accuracy trajectory of the mini-app.
//!
//! ```text
//! scenario_suite [--json PATH] [--scale F] [--scenario NAME]
//!                [--list] [--skip-bitcheck]
//! ```
//!
//! * `--json PATH`     write the JSON report array to PATH (default:
//!   print to stdout after the human summary)
//! * `--scale F`       resolution multiplier (1.0 = the registered
//!   validation resolution the tolerances are calibrated for)
//! * `--scenario NAME` run a single scenario
//! * `--list`          print the scenario catalogue and exit
//! * `--skip-bitcheck` skip the single-vs-distributed bit-identity check
//!
//! Exit code 1 if any scenario fails its registered tolerance (the CI
//! gate) or diverges between drivers.
// CLI surface: wall-clock progress timing only; never feeds a trajectory.
#![allow(clippy::disallowed_methods)]

use sph_core::diagnostics::state_fingerprint;
use sph_scenarios::{run_scenario, DriverKind, Resolution, RunOptions, ScenarioRegistry};

fn main() {
    let mut json_path: Option<String> = None;
    let mut scale = 1.0f64;
    let mut only: Option<String> = None;
    let mut list = false;
    let mut bitcheck = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--scale" => {
                scale = args
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale needs a number")
            }
            "--scenario" => only = Some(args.next().expect("--scenario needs a name")),
            "--list" => list = true,
            "--skip-bitcheck" => bitcheck = false,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let registry = ScenarioRegistry::builtin();
    if list {
        print!("{}", registry.catalogue_markdown());
        return;
    }
    if let Some(name) = &only {
        // A typo'd or renamed scenario must fail loudly — an empty run
        // that exits 0 would silently green-light the CI gate.
        if registry.get(name).is_none() {
            eprintln!("unknown scenario {name:?}; registered: {:?}", registry.names());
            std::process::exit(2);
        }
    }

    let mut reports = Vec::new();
    let mut all_ok = true;
    for sc in registry.iter() {
        if let Some(name) = &only {
            if sc.name() != name {
                continue;
            }
        }
        let opts = RunOptions {
            resolution: Resolution { scale },
            driver: DriverKind::Single,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let run = match run_scenario(sc, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{:<18} ERROR: {e}", sc.name());
                all_ok = false;
                continue;
            }
        };
        let wall = t0.elapsed().as_secs_f64();
        let report = sc.validate(&run);
        let norm = report
            .norms
            .map(|n| format!("L1 {:.4}", n.l1))
            .unwrap_or_else(|| "L1   —  ".to_string());
        println!(
            "{:<18} {:>7} particles {:>5} steps  t = {:<7.4} {}  drift {:.2e}  [{}]  {:.1}s",
            report.scenario,
            report.n_particles,
            report.steps,
            report.end_time,
            norm,
            report.energy_drift,
            if report.passed { "PASS" } else { "FAIL" },
            wall,
        );
        for c in &report.checks {
            println!(
                "    {:<28} measured {:>12.5e}  threshold {:>10.3e}  {}",
                c.name,
                c.measured,
                c.threshold,
                if c.passed { "ok" } else { "FAIL" }
            );
        }
        all_ok &= report.passed;

        if bitcheck {
            // Three macro-steps through each driver must agree bit for
            // bit (the repo-wide determinism contract, extended to every
            // registered workload).
            let quick = |driver| RunOptions {
                resolution: Resolution { scale: (scale * 0.5).min(0.5) },
                driver,
                end_time: Some(f64::INFINITY),
                max_steps: 3,
                ..Default::default()
            };
            let single = run_scenario(sc, &quick(DriverKind::Single));
            let dist = run_scenario(sc, &quick(DriverKind::Distributed { nranks: 2 }));
            match (single, dist) {
                (Ok(s), Ok(d)) => {
                    let (fs, fd) = (state_fingerprint(&s.sys), state_fingerprint(&d.sys));
                    if fs != fd {
                        println!("    bit-identity single vs distributed: FAIL");
                        all_ok = false;
                    } else {
                        println!("    bit-identity single vs distributed: ok");
                    }
                }
                (s, d) => {
                    println!("    bit-identity check ERROR: {:?} / {:?}", s.err(), d.err());
                    all_ok = false;
                }
            }
        }
        reports.push(report);
    }

    let json = format!("[{}]", reports.iter().map(|r| r.to_json()).collect::<Vec<_>>().join(","));
    match json_path {
        Some(p) => {
            std::fs::write(&p, &json).expect("write JSON report");
            println!("wrote {} reports to {p}", reports.len());
        }
        None => println!("{json}"),
    }
    if !all_ok {
        std::process::exit(1);
    }
}
