//! The SPH-EXA mini-app as a command-line program.
//!
//! The paper's §2 usability bar, quoting Messer et al.: "The building
//! should be kept as simple as a Makefile and the preparation of the run
//! to a handful of command line arguments." This binary is that handful:
//!
//! ```text
//! cargo run --release -p sph-bench --bin miniapp -- \
//!     --test square --code miniapp --particles 20000 --steps 20
//!
//! options:
//!   --test square|evrard       test case (default square)
//!   --code sphynx|changa|sphflow|miniapp   configuration (default miniapp)
//!   --particles N              particle target (default 20000)
//!   --steps N                  time-steps (default 20, Table 5)
//!   --checkpoint-every N       write a checkpoint every N steps (0 = off)
//!   --checkpoint-dir PATH      where to put them (default ./checkpoints)
//!   --resume PATH              resume from a checkpoint file written earlier
//! ```
// CLI surface: wall-clock progress timing only; never feeds a trajectory.
#![allow(clippy::disallowed_methods)]

use sph_bench::{build_evrard_sim, build_square_sim};
use sph_exa::Simulation;
use sph_ft::checkpoint::{CheckpointStore, DiskStore};
use sph_parents::{changa, miniapp, sphflow, sphynx, CodeSetup};

struct Args {
    test: String,
    code: String,
    particles: usize,
    steps: usize,
    checkpoint_every: usize,
    checkpoint_dir: String,
    resume: Option<String>,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let get =
        |flag: &str| argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1)).cloned();
    Args {
        test: get("--test").unwrap_or_else(|| "square".into()),
        code: get("--code").unwrap_or_else(|| "miniapp".into()),
        particles: get("--particles").and_then(|v| v.parse().ok()).unwrap_or(20_000),
        steps: get("--steps").and_then(|v| v.parse().ok()).unwrap_or(20),
        checkpoint_every: get("--checkpoint-every").and_then(|v| v.parse().ok()).unwrap_or(0),
        checkpoint_dir: get("--checkpoint-dir").unwrap_or_else(|| "checkpoints".into()),
        resume: get("--resume"),
    }
}

fn setup_for(code: &str) -> CodeSetup {
    match code {
        "sphynx" => sphynx(),
        "changa" => changa(),
        "sphflow" | "sph-flow" => sphflow(),
        "miniapp" | "sph-exa" => miniapp(),
        other => {
            eprintln!("unknown --code {other}; expected sphynx|changa|sphflow|miniapp");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let setup = setup_for(&args.code);

    let mut sim: Simulation = if let Some(path) = &args.resume {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot read checkpoint {path}: {e}");
            std::process::exit(2);
        });
        let sys = sph_ft::codec::decode(&bytes).unwrap_or_else(|e| {
            eprintln!("cannot decode checkpoint {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "resumed {} particles at t = {:.5} (step {})",
            sys.len(),
            sys.time,
            sys.step_count
        );
        // Gravity follows the test case (the square patch is hydro-only;
        // pass --test evrard when resuming an Evrard checkpoint).
        match (setup.gravity, args.test.as_str()) {
            (Some(g), "evrard") => {
                Simulation::resume_with_gravity(sys, setup.sph, g).expect("valid resume")
            }
            _ => Simulation::resume(sys, setup.sph).expect("valid resume"),
        }
    } else {
        match args.test.as_str() {
            "square" => build_square_sim(&setup, args.particles),
            "evrard" => {
                if !setup.supports_evrard() {
                    eprintln!(
                        "{} has no self-gravity; the Evrard test needs it (Table 5)",
                        setup.name
                    );
                    std::process::exit(2);
                }
                build_evrard_sim(&setup, args.particles, 42)
            }
            other => {
                eprintln!("unknown --test {other}; expected square|evrard");
                std::process::exit(2);
            }
        }
    };

    println!(
        "SPH-EXA mini-app: {} / {} test, {} particles, {} steps",
        setup.name,
        args.test,
        sim.sys.len(),
        args.steps
    );

    let mut store = (args.checkpoint_every > 0)
        .then(|| DiskStore::new(&args.checkpoint_dir).expect("checkpoint dir"));
    let wall_start = std::time::Instant::now();
    let c0 = sim.conservation();
    println!("step      dt        time     active   interactions   wall(s)");
    for k in 1..=args.steps {
        let t0 = std::time::Instant::now();
        let r = sim.step().expect("stable step");
        println!(
            "{:4}  {:9.3e}  {:8.5}  {:7.2}  {:>13}  {:8.3}",
            r.step,
            r.dt,
            r.time,
            r.active_fraction,
            r.stats.sph_interactions + r.stats.gravity.total_interactions(),
            t0.elapsed().as_secs_f64()
        );
        if let Some(store) = &mut store {
            if k % args.checkpoint_every == 0 {
                let label = format!("step-{:06}", sim.sys.step_count);
                let bytes = store.save(&label, &sim.sys).expect("checkpoint write");
                println!("      checkpoint '{label}' written ({bytes} bytes)");
            }
        }
    }
    let c1 = sim.conservation();
    println!("\ncompleted in {:.2}s wall-clock", wall_start.elapsed().as_secs_f64());
    println!("energy drift over the run: {:.3e}", c1.energy_drift(&c0));
    println!("{}", sim.timers().report());
}
