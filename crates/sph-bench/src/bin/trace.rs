//! Regenerate Fig. 4: the Extrae-style per-worker timeline of one SPHYNX
//! time-step of the Evrard collapse at 192 cores on Piz Daint.
//!
//! ```text
//! cargo run --release -p sph-bench --bin trace              # SPHYNX 1.3.1 behaviour
//! cargo run --release -p sph-bench --bin trace -- --fixed   # after the paper's fixes
//! cargo run --release -p sph-bench --bin trace -- --ranks 48
//! ```
//!
//! The default reproduces the pathologies the paper reads off the trace:
//! the serial tree build (phase A: one busy worker, the rest idle) and
//! the idle tails of the neighbour phases. `--fixed` shows the same step
//! with the tree build parallelised and dynamic balancing on — "B, D, and
//! J have been parallelized or re-written to be eliminated" (§5.2).

use sph_bench::{wire_experiment, ExperimentScale};
use sph_cluster::tracegen::{step_trace, PhaseProfile};
use sph_cluster::{model_step, piz_daint, LoadBalancing, StepWorkload};
use sph_parents::{sphynx, Scenario};
use sph_profiler::gantt::phase_summary;
use sph_profiler::{pop_metrics, render_gantt};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fixed = args.iter().any(|a| a == "--fixed");
    let scale = ExperimentScale::from_env();
    // Fig. 4 used 192 cores for 10⁶ particles ≈ 5 200 particles/core; at
    // reduced particle counts keep that ratio so the imbalance structure
    // is comparable, unless the user pins --ranks.
    let default_ranks = (scale.particles / 5_200).clamp(4, 192);
    let ranks: usize = args
        .iter()
        .position(|a| a == "--ranks")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_ranks);

    let setup = sphynx();
    let (mut sim, mut model) = wire_experiment(&setup, Scenario::Evrard, piz_daint(), scale);
    if fixed {
        // The post-analysis SPHYNX: parallel tree, weight-aware
        // decomposition, dynamic balancing (§5.2 "The analysis and changes
        // resulted in a more scalable SPHYNX version").
        model.balancing = LoadBalancing::Dynamic;
        model.partitioner = sph_cluster::Partitioner::Sfc(sph_domain::SfcKind::Hilbert);
    }
    // Evolve a couple of steps so the trace shows a developed state, then
    // model the final step.
    let mut prev_work: Option<Vec<f64>> = None;
    for _ in 0..2.min(scale.steps) {
        sim.step().expect("stable step");
        prev_work = Some(sim.per_particle_work().to_vec());
    }
    let work = sim.per_particle_work().to_vec();
    let zeros = vec![0.0; sim.sys.len()];
    let workload = StepWorkload {
        positions: &sim.sys.x,
        sph_work: &work,
        gravity_work: &zeros,
        interaction_radius: 2.0 * sim.sys.max_h(),
        periodicity: sim.sys.periodicity,
        bounds: sim.sys.bounds(),
    };
    let timing = model_step(&workload, ranks, &model, prev_work.as_deref());

    let profile = if fixed {
        PhaseProfile { serial_tree: false, ..PhaseProfile::sphynx_evrard() }
    } else {
        PhaseProfile::sphynx_evrard()
    };
    let trace = step_trace(&timing, &profile);

    println!(
        "Fig. 4 analogue: SPHYNX{} Evrard step at {ranks} ranks, {} particles, Piz Daint model",
        if fixed { " (fixed)" } else { " v1.3.1" },
        sim.sys.len()
    );
    println!(
        "paper: 'A highly scalable code will need not contain any of the black parallel \
         regions (idle threads)' — compare the A column and the phase tails.\n"
    );
    // Render a subset of workers (Fig. 4 shows a window of threads).
    let shown = ranks.min(24);
    let mut window = sph_profiler::Trace::new(shown);
    for w in 0..shown {
        for s in trace.spans(w) {
            window.push(w, *s);
        }
    }
    println!("{}", render_gantt(&window, 110));
    println!("{}", phase_summary(&trace));
    let m = pop_metrics(&trace, None);
    println!("POP: {m}");
    println!(
        "modelled step: compute max {:.3}s mean {:.3}s, serial {:.3}s, comm {:.4}s, total {:.3}s",
        timing.compute_max(),
        timing.compute_mean(),
        timing.serial,
        timing.comm,
        timing.total()
    );
}
