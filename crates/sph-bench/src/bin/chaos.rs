//! Chaos suite: drive the self-healing distributed driver through a
//! seeded survivable fault schedule, verify bit-identity against the
//! fault-free run at every rank count, and measure what recovery costs.
//!
//! ```text
//! chaos [--json PATH] [--steps N] [--seed S]
//! ```
//!
//! * `--json PATH` write the machine-readable report (default:
//!   `BENCH_recovery.json`)
//! * `--steps N`   macro-steps per run (default 8)
//! * `--seed S`    fault-plan seed (default 42)
//!
//! The report records, per nranks ∈ {1, 2, 4}: fingerprint equality,
//! rollback count, replayed-step cost, detection records, and the
//! Daly-vs-fixed checkpoint cadence comparison on a fault-free run.
//! Exit code 1 if any chaos run diverges from its fault-free reference.
// CLI surface: wall-clock timing feeds the report and the Daly cadence
// only; never a trajectory.
#![allow(clippy::disallowed_methods)]

use sph_core::config::SphConfig;
use sph_core::diagnostics::state_fingerprint;
use sph_core::ParticleSystem;
use sph_domain::ExchangePath;
use sph_exa::{
    DistributedBuilder, DistributedSimulation, RecoveryStats, ResilientConfig, ResilientSimulation,
    SchedulerMode,
};
use sph_ft::chaos::{CorruptionMode, FaultKind, FaultPlan};
use sph_ft::MemoryStore;
use sph_scenarios::{square_patch, SquarePatchConfig};

const RANK_COUNTS: [usize; 3] = [1, 2, 4];

fn patch_ic() -> ParticleSystem {
    square_patch(&SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() })
}

fn patch_sph() -> SphConfig {
    let cfg = SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() };
    SphConfig { gamma: cfg.gamma, target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
}

fn build(nranks: usize) -> DistributedSimulation {
    DistributedBuilder::new(patch_ic())
        .config(patch_sph())
        .nranks(nranks)
        .build()
        .expect("builder accepts the patch IC")
}

/// The survivable schedule: one of each recoverable fault kind.
fn survivable_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .at(1, FaultKind::Transient { path: ExchangePath::DtReduce, failures: 2 })
        .at(2, FaultKind::CorruptPayload { path: ExchangePath::GhostRefresh, bit: 7, repeat: 1 })
        .at(3, FaultKind::CorruptField)
        .at(4, FaultKind::KillRank { rank: 1, respawnable: true })
        .at(
            5,
            FaultKind::CorruptNewestCheckpoint {
                mode: CorruptionMode::BitFlip { byte: 11, bit: 3 },
            },
        )
        .at(5, FaultKind::CorruptField)
}

struct ChaosRow {
    nranks: usize,
    matched: bool,
    wall_reference_s: f64,
    wall_chaos_s: f64,
    stats: RecoveryStats,
}

fn detections_json(stats: &RecoveryStats) -> String {
    stats
        .detections
        .iter()
        .map(|d| format!(r#"{{ "step": {}, "detector": "{}" }}"#, d.step, d.detector))
        .collect::<Vec<_>>()
        .join(", ")
}

fn rollbacks_json(stats: &RecoveryStats) -> String {
    stats
        .rollback_records
        .iter()
        .map(|r| {
            format!(
                r#"{{ "from_step": {}, "to_step": {}, "generations_skipped": {} }}"#,
                r.from_step, r.to_step, r.generations_skipped
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let mut json_path = "BENCH_recovery.json".to_string();
    let mut steps: u64 = 8;
    let mut seed: u64 = 42;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = args.next().expect("--json needs a path"),
            "--steps" => {
                steps = args
                    .next()
                    .expect("--steps needs a value")
                    .parse()
                    .expect("--steps needs an integer")
            }
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed needs an integer")
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }

    let threads = std::env::var("SPH_THREADS").unwrap_or_else(|_| "1".into());
    let mut rows = Vec::new();
    let mut all_ok = true;

    for &nranks in &RANK_COUNTS {
        // Fault-free reference trajectory.
        let mut reference = build(nranks);
        let t0 = std::time::Instant::now();
        reference.run(steps as usize).expect("stable fault-free run");
        let wall_reference_s = t0.elapsed().as_secs_f64();
        let want = state_fingerprint(&reference.sys);

        // Chaos run through the full survivable schedule.
        let plan = survivable_plan(seed);
        let rcfg =
            ResilientConfig { scheduler: SchedulerMode::FixedSteps(2), ..Default::default() };
        let mut resilient =
            ResilientSimulation::new(build(nranks), Box::new(MemoryStore::new()), &plan, rcfg)
                .expect("gen-0 checkpoint");
        let t0 = std::time::Instant::now();
        let stats = resilient.run(steps).expect("survivable schedule must complete");
        let wall_chaos_s = t0.elapsed().as_secs_f64();

        let matched = state_fingerprint(resilient.sys()) == want;
        all_ok &= matched;
        println!(
            "nranks {nranks}: {}  rollbacks {}  replayed {} steps  detections {}  \
             ({:.2}s fault-free, {:.2}s chaos)",
            if matched { "bit-identical" } else { "DIVERGED" },
            stats.rollbacks,
            stats.steps_replayed,
            stats.detections.len(),
            wall_reference_s,
            wall_chaos_s,
        );
        rows.push(ChaosRow { nranks, matched, wall_reference_s, wall_chaos_s, stats });
    }

    // Daly-vs-fixed cadence on a fault-free resilient run: same
    // trajectory either way (checkpointing never touches physics); the
    // comparison is how many checkpoints each cadence pays for.
    let cadence_rows: Vec<String> = [
        ("fixed_every_2", SchedulerMode::FixedSteps(2)),
        // MTBF 60 s with ~ms-scale steps: Daly's interval is much longer
        // than this whole run, so it writes (almost) nothing beyond gen-0.
        ("daly_mtbf_60s", SchedulerMode::Daly { mtbf: 60.0, write_cost_guess: 1e-3 }),
    ]
    .into_iter()
    .map(|(name, mode)| {
        let rcfg = ResilientConfig { scheduler: mode, ..Default::default() };
        let mut run = ResilientSimulation::new(
            build(2),
            Box::new(MemoryStore::new()),
            &FaultPlan::new(seed),
            rcfg,
        )
        .expect("gen-0 checkpoint");
        let t0 = std::time::Instant::now();
        let stats = run.run(steps).expect("fault-free resilient run");
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "cadence {name}: {} checkpoints, {} bytes, {:.2}s",
            stats.checkpoints_written, stats.checkpoint_bytes, wall
        );
        format!(
            r#"    {{ "cadence": "{name}", "checkpoints_written": {}, "checkpoint_bytes": {}, "wall_s": {:.6} }}"#,
            stats.checkpoints_written, stats.checkpoint_bytes, wall
        )
    })
    .collect();

    let chaos_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let s = &r.stats;
            format!(
                r#"    {{
      "nranks": {},
      "bit_identical": {},
      "wall_reference_s": {:.6},
      "wall_chaos_s": {:.6},
      "steps_executed": {},
      "steps_replayed": {},
      "rollbacks": {},
      "checkpoints_written": {},
      "checkpoint_bytes": {},
      "checkpoint_write_failures": {},
      "sdc_injected": {},
      "checkpoints_corrupted": {},
      "ranks_respawned": {},
      "detections": [{}],
      "rollback_records": [{}]
    }}"#,
                r.nranks,
                r.matched,
                r.wall_reference_s,
                r.wall_chaos_s,
                s.steps_executed,
                s.steps_replayed,
                s.rollbacks,
                s.checkpoints_written,
                s.checkpoint_bytes,
                s.checkpoint_write_failures,
                s.sdc_injected,
                s.checkpoints_corrupted,
                s.ranks_respawned,
                detections_json(s),
                rollbacks_json(s),
            )
        })
        .collect();

    let json = format!(
        r#"{{
  "bench": "chaos_recovery",
  "scenario": "square_patch_10x10",
  "steps": {steps},
  "seed": {seed},
  "threads": {threads},
  "chaos": [
{}
  ],
  "cadence_fault_free": [
{}
  ]
}}
"#,
        chaos_rows.join(",\n"),
        cadence_rows.join(",\n"),
    );
    std::fs::write(&json_path, &json).expect("write JSON report");
    println!("wrote {json_path}");
    if !all_ok {
        std::process::exit(1);
    }
}
