//! Regenerate the strong-scaling figures (Figs. 1, 2 and 3).
//!
//! ```text
//! cargo run --release -p sph-bench --bin scaling                   # all panels
//! cargo run --release -p sph-bench --bin scaling -- --code sphynx  # Fig. 1
//! cargo run --release -p sph-bench --bin scaling -- --code changa  # Fig. 2
//! cargo run --release -p sph-bench --bin scaling -- --code sphflow # Fig. 3
//! SPH_EXA_FULL=1 ... runs the paper scale (10⁶ particles, 20 steps).
//! ```
//!
//! Each panel prints cores vs modelled mean time per time-step for the
//! test cases and platforms of the corresponding figure, plus the paper's
//! reported anchor values for comparison (see EXPERIMENTS.md).

use sph_bench::{run_scaling_panel, ExperimentScale};
use sph_cluster::scaling::render_scaling_table;
use sph_cluster::{marenostrum4, piz_daint};
use sph_parents::{changa, sphflow, sphynx, CodeSetup, Scenario};

/// Paper anchor values (y-axis tick labels of Figs. 1–3) for the console
/// comparison: (figure, anchor description).
fn paper_anchor(code: &str, scenario: Scenario) -> &'static str {
    match (code, scenario) {
        ("SPHYNX", Scenario::SquarePatch) => {
            "paper Fig. 1a: 38.25 s/step @ low cores → 2.79 s/step at scale (Piz Daint & MareNostrum)"
        }
        ("SPHYNX", Scenario::Evrard) => {
            "paper Fig. 1b: 40.27 s/step @ low cores → 3.86 s/step at scale"
        }
        ("ChaNGa", Scenario::SquarePatch) => {
            "paper Fig. 2a: 738.0 s/step @ low cores → 93.0 s/step floor at 1536 cores"
        }
        ("ChaNGa", Scenario::Evrard) => {
            "paper Fig. 2b: 30.38 s/step @ low cores → 5.74 s/step at scale"
        }
        ("SPH-flow", Scenario::SquarePatch) => {
            "paper Fig. 3: 31.00 s/step @ low cores → 2.80 s/step at scale"
        }
        _ => "(not reported in the paper)",
    }
}

fn run_panel(setup: &CodeSetup, scenario: Scenario, scale: ExperimentScale) {
    let scenario_name = match scenario {
        Scenario::SquarePatch => "Square test case",
        Scenario::Evrard => "Evrard test case",
    };
    println!("=== {} ({scenario_name}) ===", setup.name);
    println!("{}", paper_anchor(setup.name, scenario));
    for machine in [piz_daint(), marenostrum4()] {
        // The paper shows ChaNGa on Piz Daint only (Charm++ build).
        if setup.name == "ChaNGa" && machine.cores_per_node != 12 {
            continue;
        }
        let rows = run_scaling_panel(setup, scenario, machine, scale)
            .expect("physics evolution stayed stable");
        println!("{}", render_scaling_table(machine.name, &rows));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code_filter = args
        .iter()
        .position(|a| a == "--code")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());
    let scale = ExperimentScale::from_env();
    println!(
        "strong scaling, {} particles, {} steps, cores 12..{} (SPH_EXA_FULL=1 for paper scale)\n",
        scale.particles, scale.steps, scale.max_cores
    );

    let setups = [(sphynx(), "sphynx"), (changa(), "changa"), (sphflow(), "sphflow")];
    for (setup, key) in setups {
        if let Some(f) = &code_filter {
            if f != key {
                continue;
            }
        }
        run_panel(&setup, Scenario::SquarePatch, scale);
        if setup.supports_evrard() {
            run_panel(&setup, Scenario::Evrard, scale);
        } else {
            println!(
                "=== {} (Evrard test case) ===\nskipped: no self-gravity (Table 5)\n",
                setup.name
            );
        }
    }
}
