//! Regenerate Tables 1–5 of the paper.
//!
//! ```text
//! cargo run -p sph-bench --bin tables            # all five
//! cargo run -p sph-bench --bin tables -- --table 3
//! ```
//!
//! Tables 1–4 come from the feature registry in `sph-parents` (tested to
//! agree with the executable configurations); Table 5 from the scenario
//! registry in `sph-scenarios`.

use sph_parents::features::{table1, table2, table3, table4};
use sph_parents::render_table;
use sph_scenarios::scenario_table;

fn render_table5() -> String {
    let mut out = String::from("Table 5: Test simulations and their characteristics\n");
    out.push_str(&format!(
        "| {:22} | {:70} | {:18} | {:14} | {:24} | {:26} |\n",
        "Test Simulation", "Description", "Domain Size", "Sim. Length", "SPH Code", "Test Platform"
    ));
    out.push_str(&"-".repeat(196));
    out.push('\n');
    for s in scenario_table() {
        out.push_str(&format!(
            "| {:22} | {:70} | {:18} | {:14} | {:24} | {:26} |\n",
            format!("{} [{}]", s.name, s.reference),
            s.description,
            s.domain,
            s.simulation_length,
            s.codes,
            s.platforms
        ));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which: Option<u32> = args
        .iter()
        .position(|a| a == "--table")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let all = which.is_none();
    let want = |t: u32| all || which == Some(t);

    if want(1) {
        println!("{}", render_table(&table1()));
    }
    if want(2) {
        println!("{}", render_table(&table2()));
    }
    if want(3) {
        println!("{}", render_table(&table3()));
    }
    if want(4) {
        println!("{}", render_table(&table4()));
    }
    if want(5) {
        println!("{}", render_table5());
    }
}
