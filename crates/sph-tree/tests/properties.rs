//! Property-based tests of the tree substrate: the octree must index any
//! particle set, the neighbour search must equal brute force, Barnes–Hut
//! must stay within its error envelope, and the cell-list backend must be
//! indistinguishable (sets *and* clamp behaviour) from both.

use proptest::prelude::*;
use sph_math::{Aabb, Periodicity, Vec3};
use sph_tree::gravity::direct_field;
use sph_tree::{
    build_csr_lists, CellGrid, GravityConfig, GravitySolver, MultipoleOrder, NeighborQuery,
    NeighborSearch, Octree, OctreeConfig, TraversalStats,
};

fn points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(
        (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64).prop_map(|(x, y, z)| Vec3::new(x, y, z)),
        n,
    )
}

/// Brute-force reference: ids within the radius as clamped by the shared
/// backend formula (half each periodic span, shaved by 1e-9 relative) —
/// the exact accept test both backends implement.
fn brute_force(pts: &[Vec3], per: &Periodicity, center: Vec3, r: f64) -> Vec<u32> {
    let mut clamped = r;
    for axis in 0..3 {
        if per.periodic[axis] {
            let span = per.domain.hi.component(axis) - per.domain.lo.component(axis);
            clamped = clamped.min(0.5 * span * (1.0 - 1e-9));
        }
    }
    let r2 = clamped * clamped;
    (0..pts.len() as u32).filter(|&i| per.distance_sq(pts[i as usize], center) <= r2).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn octree_indexes_every_particle_once(pts in points(1..400), leaf in 1usize..64) {
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: leaf, parallel_sort: false },
        );
        let mut seen = vec![false; pts.len()];
        for &i in tree.order() {
            prop_assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Leaf ranges tile [0, n).
        let mut ranges: Vec<(u32, u32)> = tree
            .nodes()
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| (n.start, n.end))
            .collect();
        ranges.sort_unstable();
        let mut cursor = 0;
        for (s, e) in ranges {
            prop_assert_eq!(s, cursor);
            cursor = e;
        }
        prop_assert_eq!(cursor, pts.len() as u32);
    }

    #[test]
    fn neighbor_search_equals_brute_force(
        pts in points(2..300),
        q in (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64),
        r in 0.01..0.4_f64
    ) {
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let center = Vec3::new(q.0, q.1, q.2);
        let mut found = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(center, r, &mut found, &mut stats);
        found.sort_unstable();
        let brute: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| pts[i as usize].dist_sq(center) <= r * r)
            .collect();
        prop_assert_eq!(found, brute);
    }

    #[test]
    fn periodic_neighbor_search_equals_brute_force(
        pts in points(2..200),
        q in (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64),
        r in 0.01..0.35_f64
    ) {
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let center = Vec3::new(q.0, q.1, q.2);
        let mut found = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(center, r, &mut found, &mut stats);
        found.sort_unstable();
        let brute: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| per.distance_sq(pts[i as usize], center) <= r * r)
            .collect();
        prop_assert_eq!(found, brute);
    }

    #[test]
    fn barnes_hut_stays_within_error_envelope(pts in points(50..250)) {
        let masses = vec![1.0 / pts.len() as f64; pts.len()];
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let solver = GravitySolver::new(
            &tree,
            &masses,
            GravityConfig { g: 1.0, theta: 0.4, softening: 1e-2, order: MultipoleOrder::Quadrupole },
        );
        // Mass invariant.
        prop_assert!((solver.total_mass() - 1.0).abs() < 1e-12);
        // Acceleration error vs direct sum bounded at θ = 0.4.
        let mut stats = TraversalStats::default();
        for i in (0..pts.len()).step_by(17) {
            let bh = solver.field_at(pts[i], Some(i as u32), &mut stats);
            let exact = direct_field(&pts, &masses, pts[i], Some(i), 1.0, 1e-2);
            let rel = (bh.accel - exact.accel).norm() / exact.accel.norm().max(1e-9);
            prop_assert!(rel < 0.05, "rel accel error {rel} at particle {i}");
        }
    }

    #[test]
    fn cell_list_equals_brute_force_and_octree(
        pts in points(2..300),
        q in (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64),
        r in 0.01..0.4_f64,
        mode in 0u8..3
    ) {
        let per = match mode {
            0 => Periodicity::open(Aabb::unit()),
            1 => Periodicity::periodic_z(Aabb::unit()),
            _ => Periodicity::fully_periodic(Aabb::unit()),
        };
        let grid = CellGrid::build(&pts, per, 0.1);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, per);
        let center = Vec3::new(q.0, q.1, q.2);

        let mut from_grid = Vec::new();
        let mut gs = TraversalStats::default();
        grid.neighbors_within(center, r, &mut from_grid, &mut gs);
        from_grid.sort_unstable();

        let mut from_tree = Vec::new();
        let mut ts = TraversalStats::default();
        search.neighbors_within(center, r, &mut from_tree, &mut ts);
        from_tree.sort_unstable();

        let brute = brute_force(&pts, &per, center, r);
        prop_assert_eq!(&from_grid, &brute);
        prop_assert_eq!(&from_tree, &brute);
        // The clamp must engage identically on both backends.
        prop_assert_eq!(gs.radius_clamps, ts.radius_clamps);
        // Counting must agree with listing on both backends.
        let mut cs = TraversalStats::default();
        prop_assert_eq!(grid.count_within(center, r, &mut cs), brute.len());
        prop_assert_eq!(search.count_within(center, r, &mut cs), brute.len());
    }

    #[test]
    fn csr_lists_match_per_query_results_at_mixed_radii(
        pts in points(4..150),
        radii_seed in prop::collection::vec(0.01..0.5_f64, 4..150),
        mode in 0u8..3
    ) {
        // Radii deliberately span well below and well above the cell edge
        // (fixed at 0.07), so single-cell, 27-cell, and multi-ring scans
        // are all exercised — the "h spanning multiple cell sizes" case.
        let per = match mode {
            0 => Periodicity::open(Aabb::unit()),
            1 => Periodicity::periodic_z(Aabb::unit()),
            _ => Periodicity::fully_periodic(Aabb::unit()),
        };
        let n = pts.len();
        let radii: Vec<f64> = (0..n).map(|i| radii_seed[i % radii_seed.len()]).collect();
        let grid = CellGrid::build(&pts, per, 0.07);
        let (lists, _) = build_csr_lists(&grid, &pts, &radii);
        prop_assert_eq!(lists.query_count(), n);
        for i in 0..n {
            let brute = brute_force(&pts, &per, pts[i], radii[i]);
            prop_assert_eq!(lists.neighbors(i), &brute[..], "row {} radius {}", i, radii[i]);
        }
    }

    #[test]
    fn half_span_clamp_edge_is_exact(
        pts in points(2..120),
        q in (0.0..1.0_f64, 0.0..1.0_f64, 0.0..1.0_f64),
        over in 0.0..0.5_f64
    ) {
        // Radii at and beyond the half-span must clamp to the same
        // effective ball on both backends and must record the event.
        let per = Periodicity::fully_periodic(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.11);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, per);
        let center = Vec3::new(q.0, q.1, q.2);
        let r = 0.5 + over; // always at or past the half-span of the unit box
        let mut from_grid = Vec::new();
        let mut gs = TraversalStats::default();
        grid.neighbors_within(center, r, &mut from_grid, &mut gs);
        from_grid.sort_unstable();
        let mut from_tree = Vec::new();
        let mut ts = TraversalStats::default();
        search.neighbors_within(center, r, &mut from_tree, &mut ts);
        from_tree.sort_unstable();
        prop_assert_eq!(gs.radius_clamps, 1);
        prop_assert_eq!(ts.radius_clamps, 1);
        prop_assert_eq!(&from_grid, &from_tree);
        prop_assert_eq!(&from_grid, &brute_force(&pts, &per, center, r));
    }

    #[test]
    fn gravity_potential_is_negative_for_positive_masses(pts in points(10..100)) {
        let masses = vec![1.0; pts.len()];
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let solver = GravitySolver::new(&tree, &masses, GravityConfig::default());
        let mut stats = TraversalStats::default();
        for i in (0..pts.len()).step_by(7) {
            let s = solver.field_at(pts[i], Some(i as u32), &mut stats);
            if pts.len() > 1 {
                prop_assert!(s.potential < 0.0);
            }
            prop_assert!(s.accel.is_finite());
        }
    }
}
