//! Linear octree over Morton-sorted particles.
//!
//! Step 1 of Algorithm 1 ("Build tree"). The tree is rebuilt every time-step
//! because SPH neighbourhoods change continuously (§3); construction cost
//! therefore matters and is dominated by the key sort, which is done with
//! rayon's parallel sort. The topology pass is a linear-time recursion over
//! the sorted key ranges — each node owns a *contiguous* slice of the
//! reordered particle array, which keeps leaf scans cache-friendly and makes
//! the tree trivially cheap to walk.
//!
//! The Extrae analysis in the paper (Fig. 4, phase A) showed SPHYNX's tree
//! build was serial and a scalability bottleneck; the parallel sort +
//! linear topology here is the mini-app answer to that finding.

use crate::morton::{self, BITS_PER_AXIS};
use rayon::prelude::*;
use sph_math::{Aabb, Vec3};

/// Sentinel for "no child".
const NO_CHILD: u32 = u32::MAX;

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct OctreeConfig {
    /// Maximum number of particles in a leaf before it is split.
    pub max_leaf_size: usize,
    /// Use rayon for the key sort (the topology pass is always sequential
    /// and linear). Disabled in the deterministic single-thread tests.
    pub parallel_sort: bool,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig { max_leaf_size: 32, parallel_sort: true }
    }
}

/// One octree node. Nodes are stored in a flat `Vec`; children are indices.
#[derive(Debug, Clone)]
pub struct Node {
    /// Geometric cell of this node (an octant of the root cube).
    pub cell: Aabb,
    /// Tight bounding box of the particles inside (used for pruning).
    pub tight: Aabb,
    /// Range `[start, end)` into the Morton-sorted particle order.
    pub start: u32,
    pub end: u32,
    /// Child node indices in octant order; `u32::MAX` = absent.
    pub children: [u32; 8],
    /// Depth in the tree (root = 0).
    pub depth: u8,
}

impl Node {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.iter().all(|&c| c == NO_CHILD)
    }

    #[inline]
    pub fn count(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// Morton-ordered linear octree.
///
/// The tree stores its own copy of the particle positions in Morton order;
/// `order[k]` maps the k-th sorted slot back to the caller's particle index.
pub struct Octree {
    root_cell: Aabb,
    nodes: Vec<Node>,
    /// Sorted → original index map.
    order: Vec<u32>,
    /// Positions in sorted order (cache-friendly leaf scans).
    sorted_pos: Vec<Vec3>,
    config: OctreeConfig,
}

impl Octree {
    /// Build from particle positions.
    ///
    /// `bounds` may be any box containing all positions; it is expanded to
    /// the bounding cube required by the Morton grid. Panics on an empty
    /// input or non-finite positions.
    pub fn build(positions: &[Vec3], bounds: &Aabb, config: OctreeConfig) -> Octree {
        assert!(!positions.is_empty(), "octree: empty particle set");
        let root_cell = bounds.bounding_cube();

        // Phase 1: keys + parallel sort (the expensive part; Fig. 4 phase A).
        // The finite check is a real assert (not debug): a NaN coordinate
        // would otherwise quantise to cell 0 and scramble the tree silently,
        // and only this loop knows which particle to blame.
        let mut keyed: Vec<(u64, u32)> = positions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                assert!(p.is_finite(), "octree: non-finite position for particle {i}: {p:?}");
                (morton::encode_point(*p, &root_cell), i as u32)
            })
            .collect();
        if config.parallel_sort {
            keyed.par_sort_unstable();
        } else {
            keyed.sort_unstable();
        }
        let order: Vec<u32> = keyed.iter().map(|&(_, i)| i).collect();
        let keys: Vec<u64> = keyed.iter().map(|&(k, _)| k).collect();
        let sorted_pos: Vec<Vec3> = order.iter().map(|&i| positions[i as usize]).collect();

        // Phase 2: linear-time topology over key ranges.
        let mut tree = Octree { root_cell, nodes: Vec::new(), order, sorted_pos, config };
        tree.nodes.push(Node {
            cell: root_cell,
            tight: root_cell, // fixed up below
            start: 0,
            end: keys.len() as u32,
            children: [NO_CHILD; 8],
            depth: 0,
        });
        tree.split_node(0, &keys);
        tree.compute_tight_boxes(0);
        tree
    }

    /// Split `node` recursively until every leaf holds at most
    /// `max_leaf_size` particles or maximum Morton depth is reached.
    fn split_node(&mut self, node: usize, keys: &[u64]) {
        let (start, end, depth, cell) = {
            let n = &self.nodes[node];
            (n.start as usize, n.end as usize, n.depth, n.cell)
        };
        if end - start <= self.config.max_leaf_size || depth as u32 >= BITS_PER_AXIS {
            return;
        }
        // The 3 bits selecting the octant at this depth.
        let shift = 3 * (BITS_PER_AXIS - 1 - depth as u32);
        let mut cursor = start;
        for oct in 0..8u64 {
            // Upper bound of keys whose octant bits at `shift` equal `oct`.
            let range = &keys[cursor..end];
            let split = cursor + range.partition_point(|&k| (k >> shift) & 0b111 <= oct);
            if split > cursor {
                let child_idx = self.nodes.len() as u32;
                self.nodes.push(Node {
                    cell: cell.octant(oct as usize),
                    tight: cell,
                    start: cursor as u32,
                    end: split as u32,
                    children: [NO_CHILD; 8],
                    depth: depth + 1,
                });
                self.nodes[node].children[oct as usize] = child_idx;
                self.split_node(child_idx as usize, keys);
            }
            cursor = split;
            if cursor == end {
                break;
            }
        }
        debug_assert_eq!(cursor, end, "octree split lost particles");
    }

    /// Bottom-up tight-bounding-box computation.
    fn compute_tight_boxes(&mut self, node: usize) -> Aabb {
        if self.nodes[node].is_leaf() {
            let (s, e) = (self.nodes[node].start as usize, self.nodes[node].end as usize);
            let tight =
                Aabb::from_points(self.sorted_pos[s..e].iter()).unwrap_or(self.nodes[node].cell);
            self.nodes[node].tight = tight;
            return tight;
        }
        let children = self.nodes[node].children;
        let mut tight: Option<Aabb> = None;
        for c in children {
            if c != NO_CHILD {
                let cb = self.compute_tight_boxes(c as usize);
                tight = Some(match tight {
                    Some(t) => t.union(&cb),
                    None => cb,
                });
            }
        }
        // sph-lint: allow(panic-path) — `build` only creates internal nodes
        // by splitting an overfull leaf, so at least one child exists; an
        // all-NO_CHILD internal node is a construction bug, not an input.
        let tight = tight.expect("internal node without children");
        self.nodes[node].tight = tight;
        tight
    }

    /// The cubic root cell.
    pub fn root_cell(&self) -> &Aabb {
        &self.root_cell
    }

    /// All nodes (index 0 is the root).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of particles indexed.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Map from sorted slot to original particle index.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// Positions in Morton order.
    pub fn sorted_positions(&self) -> &[Vec3] {
        &self.sorted_pos
    }

    /// Leaf count — a cheap structural invariant for tests and stats.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Maximum depth of any node.
    pub fn max_depth(&self) -> u8 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    fn build(n: usize, leaf: usize) -> (Vec<Vec3>, Octree) {
        let pts = random_points(n, 99);
        let bounds = Aabb::unit();
        let tree = Octree::build(
            &pts,
            &bounds,
            OctreeConfig { max_leaf_size: leaf, parallel_sort: false },
        );
        (pts, tree)
    }

    #[test]
    fn all_particles_indexed_exactly_once() {
        let (pts, tree) = build(1000, 16);
        assert_eq!(tree.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        for &i in tree.order() {
            assert!(!seen[i as usize], "duplicate particle {i}");
            seen[i as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn leaves_partition_the_particle_range() {
        let (_, tree) = build(1000, 16);
        let mut ranges: Vec<(u32, u32)> =
            tree.nodes().iter().filter(|n| n.is_leaf()).map(|n| (n.start, n.end)).collect();
        ranges.sort_unstable();
        let mut cursor = 0;
        for (s, e) in ranges {
            assert_eq!(s, cursor, "gap or overlap in leaf ranges");
            assert!(e > s);
            cursor = e;
        }
        assert_eq!(cursor, tree.len() as u32);
    }

    #[test]
    fn leaf_size_respected() {
        let (_, tree) = build(5000, 24);
        for n in tree.nodes().iter().filter(|n| n.is_leaf()) {
            assert!(n.count() <= 24 || n.depth as u32 >= BITS_PER_AXIS);
        }
    }

    #[test]
    fn children_ranges_cover_parent() {
        let (_, tree) = build(2000, 8);
        for n in tree.nodes() {
            if n.is_leaf() {
                continue;
            }
            let mut total = 0;
            let mut cursor = n.start;
            for &c in &n.children {
                if c != NO_CHILD {
                    let ch = &tree.nodes()[c as usize];
                    assert_eq!(ch.start, cursor, "children not contiguous");
                    assert_eq!(ch.depth, n.depth + 1);
                    total += ch.count();
                    cursor = ch.end;
                }
            }
            assert_eq!(total, n.count());
            assert_eq!(cursor, n.end);
        }
    }

    #[test]
    fn particles_lie_in_their_leaf_cell() {
        let (_, tree) = build(2000, 16);
        for n in tree.nodes().iter().filter(|n| n.is_leaf()) {
            // The geometric cell is half-open in Morton space; allow the
            // closed tight box instead, plus a tiny tolerance for the hi
            // face clamping.
            let cell = n.cell.padded(1e-12 * n.cell.max_extent().max(1.0));
            for k in n.start..n.end {
                let p = tree.sorted_positions()[k as usize];
                assert!(cell.contains(p), "particle {p:?} outside cell {:?}", n.cell);
            }
        }
    }

    #[test]
    fn tight_boxes_contain_particles_and_nest() {
        let (_, tree) = build(3000, 16);
        for n in tree.nodes() {
            for k in n.start..n.end {
                assert!(n.tight.padded(1e-12).contains(tree.sorted_positions()[k as usize]));
            }
            if !n.is_leaf() {
                for &c in &n.children {
                    if c != NO_CHILD {
                        let ch = &tree.nodes()[c as usize];
                        assert!(n.tight.padded(1e-12).contains(ch.tight.lo));
                        assert!(n.tight.padded(1e-12).contains(ch.tight.hi));
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_and_sequential_sort_agree() {
        let pts = random_points(4000, 7);
        let b = Aabb::unit();
        let t1 = Octree::build(&pts, &b, OctreeConfig { max_leaf_size: 32, parallel_sort: false });
        let t2 = Octree::build(&pts, &b, OctreeConfig { max_leaf_size: 32, parallel_sort: true });
        // Same node count and same sorted positions (keys are unique with
        // overwhelming probability at 21-bit resolution).
        assert_eq!(t1.nodes().len(), t2.nodes().len());
        assert_eq!(t1.sorted_positions().len(), t2.sorted_positions().len());
        for (a, b) in t1.sorted_positions().iter().zip(t2.sorted_positions()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn single_particle_tree() {
        let pts = vec![Vec3::splat(0.5)];
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.leaf_count(), 1);
        assert!(tree.nodes()[0].is_leaf());
    }

    #[test]
    fn duplicate_positions_are_handled() {
        // Pathological but legal: all particles at one point. The depth
        // guard must terminate the recursion.
        let pts = vec![Vec3::splat(0.25); 100];
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 4, parallel_sort: false },
        );
        assert_eq!(tree.len(), 100);
        // One deep chain ending in a fat leaf.
        let leaf = tree.nodes().iter().find(|n| n.is_leaf()).unwrap();
        assert_eq!(leaf.count(), 100);
    }

    #[test]
    #[should_panic]
    fn empty_input_panics() {
        let _ = Octree::build(&[], &Aabb::unit(), OctreeConfig::default());
    }

    #[test]
    #[should_panic(expected = "particle 3")]
    fn nan_position_reports_particle_index() {
        let mut pts = random_points(8, 44);
        pts[3].y = f64::NAN;
        let _ = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
    }

    #[test]
    fn clustered_distribution_deepens_tree() {
        // A centrally condensed blob (Evrard-like) must refine deeper at
        // the centre than a uniform field refines anywhere.
        let mut rng = SplitMix64::new(5);
        let clustered: Vec<Vec3> = (0..4000)
            .map(|_| {
                let r = rng.next_f64().powi(3) * 0.5; // heavy centre
                let theta = rng.uniform(0.0, std::f64::consts::PI);
                let phi = rng.uniform(0.0, 2.0 * std::f64::consts::PI);
                Vec3::new(
                    0.5 + r * theta.sin() * phi.cos(),
                    0.5 + r * theta.sin() * phi.sin(),
                    0.5 + r * theta.cos(),
                )
            })
            .collect();
        let uniform = random_points(4000, 6);
        let cfg = OctreeConfig { max_leaf_size: 16, parallel_sort: false };
        let tc = Octree::build(&clustered, &Aabb::unit(), cfg);
        let tu = Octree::build(&uniform, &Aabb::unit(), cfg);
        assert!(
            tc.max_depth() > tu.max_depth(),
            "clustered depth {} vs uniform {}",
            tc.max_depth(),
            tu.max_depth()
        );
    }
}
