//! Hierarchical tree substrate: octree build, neighbour discovery, and
//! Barnes–Hut self-gravity.
//!
//! Algorithm 1 of the paper structures every SPH time-step around a tree:
//! step 1 builds it, step 2 walks it to find neighbours, step 4 (optional)
//! reuses it for self-gravity via multipole expansions. All three codes in
//! Table 1 discover neighbours by a tree walk, and the astrophysics codes
//! compute gravity with multipoles (4-pole for SPHYNX, 16-pole for ChaNGa).
//!
//! This crate provides:
//! * [`morton`] — 63-bit Morton (Z-order) keys, also reused by the SFC
//!   domain decomposition in `sph-domain`;
//! * [`octree`] — a linear octree built over Morton-sorted particles, with
//!   a rayon-parallel construction path;
//! * [`neighbors`] — fixed-radius neighbour search by tree walk with
//!   optional per-axis periodicity (the square patch wraps in z);
//! * [`cell_list`] — the uniform-grid neighbour pipeline and the CSR
//!   neighbour lists every SPH kernel pass streams over (the production
//!   hot path; the octree walk remains as reference and gravity support);
//! * [`gravity`] — multipole moments (monopole + quadrupole), an
//!   opening-angle MAC, a Barnes–Hut traversal, and a direct-summation
//!   reference used by the validation tests.
//!
//! Every traversal records interaction counts in [`TraversalStats`]; the
//! cluster simulator in `sph-cluster` converts those counts into modelled
//! compute time, which is how the strong-scaling figures are produced
//! without the authors' hardware.

pub mod cell_list;
pub mod gravity;
pub mod morton;
pub mod neighbors;
pub mod octree;

pub use cell_list::{build_csr_lists, CellGrid, NeighborLists, NeighborQuery};
pub use gravity::{GravityConfig, GravitySolver, MultipoleOrder};
pub use neighbors::NeighborSearch;
pub use octree::{Octree, OctreeConfig};

/// Counters filled in by tree traversals; the currency of the performance
/// model (`sph-cluster` charges modelled seconds per unit of each).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Tree nodes visited (pruning tests executed); for the cell-list
    /// backend, cells scanned.
    pub nodes_visited: u64,
    /// Particle–particle interactions evaluated.
    pub p2p_interactions: u64,
    /// Particle–multipole (cell) interactions evaluated.
    pub p2m_interactions: u64,
    /// Ball queries whose radius was clamped below half a periodic span.
    /// A sustained nonzero rate means `2h` outgrew the domain — support
    /// is silently truncated, which the step statistics must surface
    /// instead of hiding.
    pub radius_clamps: u64,
}

impl TraversalStats {
    pub fn merge(&mut self, o: &TraversalStats) {
        self.nodes_visited += o.nodes_visited;
        self.p2p_interactions += o.p2p_interactions;
        self.p2m_interactions += o.p2m_interactions;
        self.radius_clamps += o.radius_clamps;
    }

    /// Total interaction count, the dominant cost driver.
    pub fn total_interactions(&self) -> u64 {
        self.p2p_interactions + self.p2m_interactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge() {
        let mut a = TraversalStats {
            nodes_visited: 1,
            p2p_interactions: 2,
            p2m_interactions: 3,
            radius_clamps: 4,
        };
        let b = TraversalStats {
            nodes_visited: 10,
            p2p_interactions: 20,
            p2m_interactions: 30,
            radius_clamps: 40,
        };
        a.merge(&b);
        assert_eq!(a.nodes_visited, 11);
        assert_eq!(a.total_interactions(), 55);
        assert_eq!(a.radius_clamps, 44);
    }
}
