//! Fixed-radius neighbour discovery by tree walk (Algorithm 1, step 2).
//!
//! All three parent codes discover neighbours by walking a tree (Table 1);
//! this module is the mini-app's version. Searches prune on the per-node
//! *tight* bounding boxes, support per-axis periodicity by querying each
//! ghost image of the search centre (the square patch wraps in z), and
//! count visited nodes / evaluated pairs in [`TraversalStats`] for the
//! performance model.

use crate::octree::Octree;
use crate::TraversalStats;
use rayon::prelude::*;
use sph_math::{Periodicity, Vec3};

/// Neighbour search over a built octree.
pub struct NeighborSearch<'a> {
    tree: &'a Octree,
    periodicity: Periodicity,
}

impl<'a> NeighborSearch<'a> {
    pub fn new(tree: &'a Octree, periodicity: Periodicity) -> Self {
        // Minimum-image searches are only unambiguous when the radius stays
        // below half the periodic span; enforced per query below.
        NeighborSearch { tree, periodicity }
    }

    /// Indices (original particle ids) of all particles within `radius` of
    /// `center`, appended to `out`. Includes the query particle itself if it
    /// is within range — SPH sums run over `j = i` too (self-contribution).
    pub fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        for axis in 0..3 {
            if self.periodicity.periodic[axis] {
                let span = self.periodicity.domain.extent().component(axis);
                assert!(
                    2.0 * radius <= span,
                    "search radius {radius} exceeds half the periodic span {span} on axis {axis}"
                );
            }
        }
        for offset in self.periodicity.ghost_offsets(center, radius) {
            self.search_one_image(center + offset, radius, out, stats);
        }
    }

    /// Plain (non-periodic) search from one image of the centre.
    fn search_one_image(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        let r2 = radius * radius;
        let nodes = self.tree.nodes();
        let pos = self.tree.sorted_positions();
        let order = self.tree.order();
        // Explicit stack; recursion depth can reach 21 but a stack avoids
        // function-call overhead in this hot path.
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            stats.nodes_visited += 1;
            if node.tight.dist_sq_to_point(center) > r2 {
                continue;
            }
            if node.is_leaf() {
                for k in node.start..node.end {
                    stats.p2p_interactions += 1;
                    if pos[k as usize].dist_sq(center) <= r2 {
                        out.push(order[k as usize]);
                    }
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Count of neighbours within `radius` of `center` (no allocation).
    pub fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        let mut tmp = Vec::with_capacity(64);
        self.neighbors_within(center, radius, &mut tmp, stats);
        tmp.len()
    }

    /// Batch search: neighbour lists for many query points in parallel.
    ///
    /// Returns one `Vec<u32>` per query plus the merged traversal stats.
    /// This is the shape of the per-time-step neighbour phase (Fig. 4
    /// phases B–D) and is embarrassingly parallel over queries.
    pub fn batch_neighbors(
        &self,
        centers: &[Vec3],
        radii: &[f64],
    ) -> (Vec<Vec<u32>>, TraversalStats) {
        assert_eq!(centers.len(), radii.len());
        let results: Vec<(Vec<u32>, TraversalStats)> = centers
            .par_iter()
            .zip(radii.par_iter())
            .map(|(&c, &r)| {
                let mut out = Vec::with_capacity(96);
                let mut stats = TraversalStats::default();
                self.neighbors_within(c, r, &mut out, &mut stats);
                (out, stats)
            })
            .collect();
        let mut merged = TraversalStats::default();
        let lists = results
            .into_iter()
            .map(|(l, s)| {
                merged.merge(&s);
                l
            })
            .collect();
        (lists, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::OctreeConfig;
    use sph_math::{Aabb, SplitMix64};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    /// Brute-force reference with the same periodic metric.
    fn brute_force(pts: &[Vec3], per: &Periodicity, c: Vec3, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| per.distance_sq(pts[i as usize], c) <= r * r)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_open_domain() {
        let pts = random_points(2000, 31);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(77);
        for _ in 0..50 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.2);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r));
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    fn matches_brute_force_periodic_z() {
        let pts = random_points(1500, 41);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(88);
        for _ in 0..50 {
            // Bias queries toward the z faces to stress the wrap.
            let z =
                if rng.next_f64() < 0.5 { rng.uniform(0.0, 0.1) } else { rng.uniform(0.9, 1.0) };
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), z);
            let r = rng.uniform(0.02, 0.15);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "c={c:?} r={r}");
        }
    }

    #[test]
    fn fully_periodic_corner_query() {
        let pts = random_points(1000, 55);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let per = Periodicity::fully_periodic(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let c = Vec3::splat(0.01); // near the corner: 8 images
        let r = 0.12;
        let mut found = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(c, r, &mut found, &mut stats);
        found.sort_unstable();
        assert_eq!(found, brute_force(&pts, &per, c, r));
    }

    #[test]
    #[should_panic]
    fn radius_beyond_half_span_rejected() {
        let pts = random_points(100, 3);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(Vec3::splat(0.5), 0.6, &mut out, &mut stats);
    }

    #[test]
    fn batch_matches_single_queries() {
        let pts = random_points(800, 21);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let centers: Vec<Vec3> = pts[..100].to_vec();
        let radii = vec![0.1; 100];
        let (lists, stats) = search.batch_neighbors(&centers, &radii);
        assert_eq!(lists.len(), 100);
        assert!(stats.p2p_interactions > 0);
        for (i, list) in lists.iter().enumerate() {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, brute_force(&pts, &per, centers[i], 0.1));
            // Self is always a neighbour at r > 0.
            assert!(sorted.contains(&(i as u32)));
        }
    }

    #[test]
    fn count_within_matches_list_length() {
        let pts = random_points(500, 61);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let c = Vec3::splat(0.4);
        let n = search.count_within(c, 0.2, &mut stats);
        let mut out = Vec::new();
        search.neighbors_within(c, 0.2, &mut out, &mut stats);
        assert_eq!(n, out.len());
    }

    #[test]
    fn pruning_actually_prunes() {
        // A tiny search in a big tree must visit far fewer nodes than exist.
        let pts = random_points(10_000, 13);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let mut out = Vec::new();
        search.neighbors_within(Vec3::splat(0.5), 0.03, &mut out, &mut stats);
        assert!(
            (stats.nodes_visited as usize) < tree.nodes().len() / 4,
            "visited {} of {} nodes",
            stats.nodes_visited,
            tree.nodes().len()
        );
    }
}
