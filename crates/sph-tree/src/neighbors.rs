//! Fixed-radius neighbour discovery by tree walk (Algorithm 1, step 2).
//!
//! All three parent codes discover neighbours by walking a tree (Table 1);
//! this module is the mini-app's version. Searches prune on the per-node
//! *tight* bounding boxes, support per-axis periodicity by querying each
//! ghost image of the search centre (the square patch wraps in z), and
//! count visited nodes / evaluated pairs in [`TraversalStats`] for the
//! performance model.

use crate::octree::Octree;
use crate::TraversalStats;
use rayon::prelude::*;
use sph_math::{Periodicity, Vec3, REDUCE_CHUNK};

/// Neighbour search over a built octree.
pub struct NeighborSearch<'a> {
    tree: &'a Octree,
    periodicity: Periodicity,
}

impl<'a> NeighborSearch<'a> {
    pub fn new(tree: &'a Octree, periodicity: Periodicity) -> Self {
        // Minimum-image searches are only unambiguous when the radius stays
        // below half the periodic span; enforced per query below.
        NeighborSearch { tree, periodicity }
    }

    /// Indices (original particle ids) of all particles within `radius` of
    /// `center`, appended to `out`. Includes the query particle itself if it
    /// is within range — SPH sums run over `j = i` too (self-contribution).
    ///
    /// The minimum-image metric cannot see farther than half the periodic
    /// span, so on periodic axes the effective radius is **clamped** to just
    /// under `span/2`. Smoothing-length iteration legitimately pushes `2h`
    /// past that on small domains (e.g. a coarse square patch growing `h`
    /// toward its neighbour target); aborting the whole simulation for it —
    /// the pre-fix behaviour — turned a benign saturation into a crash.
    pub fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let radius = self.clamp_radius(radius);
        for offset in self.periodicity.ghost_offsets(center, radius) {
            self.search_one_image(center + offset, radius, out, stats);
        }
    }

    /// Largest usable search radius: strictly below half of every periodic
    /// span (where the minimum image becomes ambiguous), the input radius
    /// otherwise.
    pub fn clamp_radius(&self, radius: f64) -> f64 {
        let mut r = radius;
        for axis in 0..3 {
            if self.periodicity.periodic[axis] {
                let span = self.periodicity.domain.extent().component(axis);
                r = r.min(0.5 * span * (1.0 - 1e-9));
            }
        }
        r
    }

    /// Plain (non-periodic) search from one image of the centre.
    fn search_one_image(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        let r2 = radius * radius;
        let nodes = self.tree.nodes();
        let pos = self.tree.sorted_positions();
        let order = self.tree.order();
        // Explicit stack; recursion depth can reach 21 but a stack avoids
        // function-call overhead in this hot path.
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            stats.nodes_visited += 1;
            if node.tight.dist_sq_to_point(center) > r2 {
                continue;
            }
            if node.is_leaf() {
                for k in node.start..node.end {
                    stats.p2p_interactions += 1;
                    if pos[k as usize].dist_sq(center) <= r2 {
                        out.push(order[k as usize]);
                    }
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Count of neighbours within `radius` of `center` (no allocation).
    pub fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        let mut tmp = Vec::with_capacity(64);
        self.neighbors_within(center, radius, &mut tmp, stats);
        tmp.len()
    }

    /// Batch search: neighbour lists for many query points in parallel.
    ///
    /// Returns one `Vec<u32>` per query plus the merged traversal stats.
    /// This is the shape of the per-time-step neighbour phase (Fig. 4
    /// phases B–D) and is embarrassingly parallel over queries.
    pub fn batch_neighbors(
        &self,
        centers: &[Vec3],
        radii: &[f64],
    ) -> (Vec<Vec<u32>>, TraversalStats) {
        assert_eq!(centers.len(), radii.len());
        // Chunked map (fixed REDUCE_CHUNK boundaries, thread-count
        // independent): stats fold once per chunk, lists stay per query.
        let chunks: Vec<(Vec<Vec<u32>>, TraversalStats)> = centers
            .par_chunks(REDUCE_CHUNK)
            .enumerate()
            .map(|(c, chunk)| {
                let base = c * REDUCE_CHUNK;
                let mut stats = TraversalStats::default();
                let lists = chunk
                    .iter()
                    .enumerate()
                    .map(|(off, &center)| {
                        let mut out = Vec::with_capacity(96);
                        self.neighbors_within(center, radii[base + off], &mut out, &mut stats);
                        out
                    })
                    .collect();
                (lists, stats)
            })
            .collect();
        // Ordered reduce.
        let mut merged = TraversalStats::default();
        let mut lists = Vec::with_capacity(centers.len());
        for (chunk_lists, stats) in chunks {
            merged.merge(&stats);
            lists.extend(chunk_lists);
        }
        (lists, merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::OctreeConfig;
    use sph_math::{Aabb, SplitMix64};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    /// Brute-force reference with the same periodic metric.
    fn brute_force(pts: &[Vec3], per: &Periodicity, c: Vec3, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| per.distance_sq(pts[i as usize], c) <= r * r)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_open_domain() {
        let pts = random_points(2000, 31);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(77);
        for _ in 0..50 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.2);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r));
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    fn matches_brute_force_periodic_z() {
        let pts = random_points(1500, 41);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(88);
        for _ in 0..50 {
            // Bias queries toward the z faces to stress the wrap.
            let z =
                if rng.next_f64() < 0.5 { rng.uniform(0.0, 0.1) } else { rng.uniform(0.9, 1.0) };
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), z);
            let r = rng.uniform(0.02, 0.15);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "c={c:?} r={r}");
        }
    }

    #[test]
    fn fully_periodic_corner_query() {
        let pts = random_points(1000, 55);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let per = Periodicity::fully_periodic(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let c = Vec3::splat(0.01); // near the corner: 8 images
        let r = 0.12;
        let mut found = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(c, r, &mut found, &mut stats);
        found.sort_unstable();
        assert_eq!(found, brute_force(&pts, &per, c, r));
    }

    #[test]
    fn radius_beyond_half_span_is_clamped_not_rejected() {
        // Regression: this used to `assert!(2r ≤ span)` and abort the whole
        // simulation when smoothing-length iteration pushed 2h past half
        // the periodic span on a small domain. It must clamp instead.
        let pts = random_points(100, 3);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        let requested = 0.6; // 2r = 1.2 > span = 1.0
        search.neighbors_within(Vec3::splat(0.5), requested, &mut out, &mut stats);
        out.sort_unstable();
        let effective = search.clamp_radius(requested);
        assert!(effective < 0.5 && effective > 0.49);
        assert_eq!(out, brute_force(&pts, &per, Vec3::splat(0.5), effective));
    }

    #[test]
    fn clamp_only_affects_periodic_axes() {
        let pts = random_points(200, 9);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        // Open domain: no clamping, arbitrarily large radius finds everyone.
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        assert_eq!(search.clamp_radius(5.0), 5.0);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(Vec3::splat(0.5), 5.0, &mut out, &mut stats);
        assert_eq!(out.len(), pts.len());
        // Periodic z: only the z span caps the radius.
        let search_z = NeighborSearch::new(&tree, Periodicity::periodic_z(Aabb::unit()));
        let clamped = search_z.clamp_radius(5.0);
        assert!(clamped < 0.5);
    }

    #[test]
    fn batch_matches_single_queries() {
        let pts = random_points(800, 21);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let centers: Vec<Vec3> = pts[..100].to_vec();
        let radii = vec![0.1; 100];
        let (lists, stats) = search.batch_neighbors(&centers, &radii);
        assert_eq!(lists.len(), 100);
        assert!(stats.p2p_interactions > 0);
        for (i, list) in lists.iter().enumerate() {
            let mut sorted = list.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, brute_force(&pts, &per, centers[i], 0.1));
            // Self is always a neighbour at r > 0.
            assert!(sorted.contains(&(i as u32)));
        }
    }

    #[test]
    fn count_within_matches_list_length() {
        let pts = random_points(500, 61);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let c = Vec3::splat(0.4);
        let n = search.count_within(c, 0.2, &mut stats);
        let mut out = Vec::new();
        search.neighbors_within(c, 0.2, &mut out, &mut stats);
        assert_eq!(n, out.len());
    }

    #[test]
    fn pruning_actually_prunes() {
        // A tiny search in a big tree must visit far fewer nodes than exist.
        let pts = random_points(10_000, 13);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let mut out = Vec::new();
        search.neighbors_within(Vec3::splat(0.5), 0.03, &mut out, &mut stats);
        assert!(
            (stats.nodes_visited as usize) < tree.nodes().len() / 4,
            "visited {} of {} nodes",
            stats.nodes_visited,
            tree.nodes().len()
        );
    }
}
