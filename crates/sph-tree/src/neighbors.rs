//! Fixed-radius neighbour discovery by tree walk (Algorithm 1, step 2).
//!
//! All three parent codes discover neighbours by walking a tree (Table 1);
//! this module is the mini-app's version. Searches prune on the per-node
//! *tight* bounding boxes, support per-axis periodicity by querying each
//! ghost image of the search centre (the square patch wraps in z), and
//! count visited nodes / evaluated pairs in [`TraversalStats`] for the
//! performance model.

use crate::cell_list::{build_csr_lists, for_each_image_offset, NeighborLists, NeighborQuery};
use crate::morton::BITS_PER_AXIS;
use crate::octree::Octree;
use crate::TraversalStats;
use sph_math::{Periodicity, Vec3};

/// Fixed capacity for the non-allocating traversal stack: each pop of an
/// internal node pushes at most 8 children (net +7) and the tree is at
/// most `BITS_PER_AXIS` levels deep.
const STACK_CAP: usize = 8 * (BITS_PER_AXIS as usize + 2);

/// Neighbour search over a built octree.
pub struct NeighborSearch<'a> {
    tree: &'a Octree,
    periodicity: Periodicity,
}

impl<'a> NeighborSearch<'a> {
    pub fn new(tree: &'a Octree, periodicity: Periodicity) -> Self {
        // Minimum-image searches are only unambiguous when the radius stays
        // below half the periodic span; enforced per query below.
        NeighborSearch { tree, periodicity }
    }

    /// Indices (original particle ids) of all particles within `radius` of
    /// `center`, appended to `out`. Includes the query particle itself if it
    /// is within range — SPH sums run over `j = i` too (self-contribution).
    ///
    /// The minimum-image metric cannot see farther than half the periodic
    /// span, so on periodic axes the effective radius is **clamped** to just
    /// under `span/2`. Smoothing-length iteration legitimately pushes `2h`
    /// past that on small domains (e.g. a coarse square patch growing `h`
    /// toward its neighbour target); aborting the whole simulation for it —
    /// the pre-fix behaviour — turned a benign saturation into a crash.
    pub fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        for offset in self.periodicity.ghost_offsets(center, clamped) {
            self.search_one_image(center + offset, clamped, &mut |id, _| out.push(id), stats);
        }
    }

    /// Twin of [`Self::neighbors_within`] that surfaces each accepted
    /// pair's squared distance (to the accepting periodic image — the
    /// very value the walk compared against `r²`). See
    /// [`NeighborQuery::neighbors_with_dist`] for the uniqueness
    /// guarantee the half-span clamp provides.
    pub fn neighbors_with_dist(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<(u32, f64)>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        for offset in self.periodicity.ghost_offsets(center, clamped) {
            self.search_one_image(
                center + offset,
                clamped,
                &mut |id, d2| out.push((id, d2)),
                stats,
            );
        }
    }

    /// Largest usable search radius: strictly below half of every periodic
    /// span (where the minimum image becomes ambiguous), the input radius
    /// otherwise.
    pub fn clamp_radius(&self, radius: f64) -> f64 {
        let mut r = radius;
        for axis in 0..3 {
            if self.periodicity.periodic[axis] {
                let span = self.periodicity.domain.extent().component(axis);
                r = r.min(0.5 * span * (1.0 - 1e-9));
            }
        }
        r
    }

    /// Plain (non-periodic) search from one image of the centre. The
    /// visitor receives `(original id, accept-test dist²)`.
    fn search_one_image(
        &self,
        center: Vec3,
        radius: f64,
        visit: &mut impl FnMut(u32, f64),
        stats: &mut TraversalStats,
    ) {
        let r2 = radius * radius;
        let nodes = self.tree.nodes();
        let pos = self.tree.sorted_positions();
        let order = self.tree.order();
        // Explicit stack; recursion depth can reach 21 but a stack avoids
        // function-call overhead in this hot path. Pre-sized for the worst
        // case (7 deferred siblings per level × max depth) so it never
        // grows mid-traversal.
        let mut stack: Vec<u32> = Vec::with_capacity(7 * 21 + 1);
        stack.push(0);
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            stats.nodes_visited += 1;
            if node.tight.dist_sq_to_point(center) > r2 {
                continue;
            }
            if node.is_leaf() {
                for k in node.start..node.end {
                    stats.p2p_interactions += 1;
                    let d2 = pos[k as usize].dist_sq(center);
                    if d2 <= r2 {
                        visit(order[k as usize], d2);
                    }
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Count of neighbours within `radius` of `center` — genuinely
    /// allocation-free: a fixed-capacity traversal stack and an inline
    /// enumeration of the periodic image offsets (no temporary result
    /// `Vec`, no heap at all).
    pub fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        let mut count = 0usize;
        for_each_image_offset(&self.periodicity, center, clamped, |offset| {
            count += self.count_one_image(center + offset, clamped, stats);
        });
        count
    }

    /// Counting twin of `search_one_image` on a fixed-capacity stack.
    fn count_one_image(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        let r2 = radius * radius;
        let nodes = self.tree.nodes();
        let pos = self.tree.sorted_positions();
        let mut count = 0usize;
        let mut stack = [0u32; STACK_CAP];
        let mut top = 1usize; // stack[0] = root (0) already
        while top > 0 {
            top -= 1;
            let node = &nodes[stack[top] as usize];
            stats.nodes_visited += 1;
            if node.tight.dist_sq_to_point(center) > r2 {
                continue;
            }
            if node.is_leaf() {
                for k in node.start..node.end {
                    stats.p2p_interactions += 1;
                    if pos[k as usize].dist_sq(center) <= r2 {
                        count += 1;
                    }
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        debug_assert!(top < STACK_CAP, "traversal stack overflow");
                        stack[top] = c;
                        top += 1;
                    }
                }
            }
        }
        count
    }

    /// Batch search: CSR neighbour lists for many query points in
    /// parallel, built by the shared [`build_csr_lists`] pipeline (fixed
    /// `REDUCE_CHUNK` boundaries + ordered reduce — thread-count
    /// independent, one flat allocation per chunk instead of one `Vec`
    /// per query). Rows come back sorted ascending. This is the shape of
    /// the per-time-step neighbour phase (Fig. 4 phases B–D).
    pub fn batch_neighbors(
        &self,
        centers: &[Vec3],
        radii: &[f64],
    ) -> (NeighborLists, TraversalStats) {
        build_csr_lists(self, centers, radii)
    }
}

impl NeighborQuery for NeighborSearch<'_> {
    fn clamp_radius(&self, radius: f64) -> f64 {
        NeighborSearch::clamp_radius(self, radius)
    }

    fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        NeighborSearch::neighbors_within(self, center, radius, out, stats)
    }

    fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        NeighborSearch::count_within(self, center, radius, stats)
    }

    fn neighbors_with_dist(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<(u32, f64)>,
        stats: &mut TraversalStats,
    ) {
        NeighborSearch::neighbors_with_dist(self, center, radius, out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::OctreeConfig;
    use sph_math::{Aabb, SplitMix64};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    /// Brute-force reference with the same periodic metric.
    fn brute_force(pts: &[Vec3], per: &Periodicity, c: Vec3, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..pts.len() as u32)
            .filter(|&i| per.distance_sq(pts[i as usize], c) <= r * r)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_open_domain() {
        let pts = random_points(2000, 31);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(77);
        for _ in 0..50 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.2);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r));
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    fn matches_brute_force_periodic_z() {
        let pts = random_points(1500, 41);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut rng = SplitMix64::new(88);
        for _ in 0..50 {
            // Bias queries toward the z faces to stress the wrap.
            let z =
                if rng.next_f64() < 0.5 { rng.uniform(0.0, 0.1) } else { rng.uniform(0.9, 1.0) };
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), z);
            let r = rng.uniform(0.02, 0.15);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            search.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "c={c:?} r={r}");
        }
    }

    #[test]
    fn fully_periodic_corner_query() {
        let pts = random_points(1000, 55);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let per = Periodicity::fully_periodic(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let c = Vec3::splat(0.01); // near the corner: 8 images
        let r = 0.12;
        let mut found = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(c, r, &mut found, &mut stats);
        found.sort_unstable();
        assert_eq!(found, brute_force(&pts, &per, c, r));
    }

    #[test]
    fn radius_beyond_half_span_is_clamped_not_rejected() {
        // Regression: this used to `assert!(2r ≤ span)` and abort the whole
        // simulation when smoothing-length iteration pushed 2h past half
        // the periodic span on a small domain. It must clamp instead.
        let pts = random_points(100, 3);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let per = Periodicity::periodic_z(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        let requested = 0.6; // 2r = 1.2 > span = 1.0
        search.neighbors_within(Vec3::splat(0.5), requested, &mut out, &mut stats);
        out.sort_unstable();
        let effective = search.clamp_radius(requested);
        assert!(effective < 0.5 && effective > 0.49);
        assert_eq!(out, brute_force(&pts, &per, Vec3::splat(0.5), effective));
    }

    #[test]
    fn clamp_only_affects_periodic_axes() {
        let pts = random_points(200, 9);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        // Open domain: no clamping, arbitrarily large radius finds everyone.
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        assert_eq!(search.clamp_radius(5.0), 5.0);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        search.neighbors_within(Vec3::splat(0.5), 5.0, &mut out, &mut stats);
        assert_eq!(out.len(), pts.len());
        // Periodic z: only the z span caps the radius.
        let search_z = NeighborSearch::new(&tree, Periodicity::periodic_z(Aabb::unit()));
        let clamped = search_z.clamp_radius(5.0);
        assert!(clamped < 0.5);
    }

    #[test]
    fn batch_matches_single_queries() {
        let pts = random_points(800, 21);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let per = Periodicity::open(Aabb::unit());
        let search = NeighborSearch::new(&tree, per);
        let centers: Vec<Vec3> = pts[..100].to_vec();
        let radii = vec![0.1; 100];
        let (lists, stats) = search.batch_neighbors(&centers, &radii);
        assert_eq!(lists.query_count(), 100);
        assert!(stats.p2p_interactions > 0);
        for (i, &center) in centers.iter().enumerate() {
            // Rows arrive sorted ascending (the canonical CSR contract).
            assert_eq!(lists.neighbors(i), brute_force(&pts, &per, center, 0.1));
            // Self is always a neighbour at r > 0.
            assert!(lists.neighbors(i).contains(&(i as u32)));
        }
    }

    #[test]
    fn count_within_matches_list_length_open_domain() {
        let pts = random_points(500, 61);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut rng = SplitMix64::new(19);
        for _ in 0..40 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.4);
            let mut stats = TraversalStats::default();
            let n = search.count_within(c, r, &mut stats);
            let mut out = Vec::new();
            search.neighbors_within(c, r, &mut out, &mut stats);
            assert_eq!(n, out.len(), "c={c:?} r={r}");
        }
    }

    #[test]
    fn count_within_matches_list_length_periodic() {
        let pts = random_points(600, 67);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        for per in
            [Periodicity::periodic_z(Aabb::unit()), Periodicity::fully_periodic(Aabb::unit())]
        {
            let search = NeighborSearch::new(&tree, per);
            let mut rng = SplitMix64::new(71);
            for _ in 0..40 {
                // Face-biased centres stress the multi-image branch; radii
                // past the half span stress the clamp branch.
                let z = if rng.next_f64() < 0.5 {
                    rng.uniform(0.0, 0.08)
                } else {
                    rng.uniform(0.08, 1.0)
                };
                let c = Vec3::new(rng.next_f64(), rng.next_f64(), z);
                let r = rng.uniform(0.02, 0.7);
                let mut list_stats = TraversalStats::default();
                let mut out = Vec::new();
                search.neighbors_within(c, r, &mut out, &mut list_stats);
                let mut count_stats = TraversalStats::default();
                let n = search.count_within(c, r, &mut count_stats);
                assert_eq!(n, out.len(), "c={c:?} r={r}");
                assert_eq!(count_stats.radius_clamps, list_stats.radius_clamps);
            }
        }
    }

    #[test]
    fn clamp_counter_fires_exactly_when_the_clamp_engages() {
        let pts = random_points(200, 77);
        let tree = Octree::build(&pts, &Aabb::unit(), OctreeConfig::default());
        let search = NeighborSearch::new(&tree, Periodicity::periodic_z(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let mut out = Vec::new();
        // Below half the z span: the clamp never engages.
        search.neighbors_within(Vec3::splat(0.5), 0.49, &mut out, &mut stats);
        assert_eq!(stats.radius_clamps, 0);
        // Past half the span: exactly one event per clamped query.
        out.clear();
        search.neighbors_within(Vec3::splat(0.5), 0.6, &mut out, &mut stats);
        assert_eq!(stats.radius_clamps, 1);
        search.count_within(Vec3::splat(0.5), 0.6, &mut stats);
        assert_eq!(stats.radius_clamps, 2);
        // Open domains never clamp, whatever the radius.
        let open = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut ostats = TraversalStats::default();
        open.count_within(Vec3::splat(0.5), 99.0, &mut ostats);
        assert_eq!(ostats.radius_clamps, 0);
    }

    #[test]
    fn pruning_actually_prunes() {
        // A tiny search in a big tree must visit far fewer nodes than exist.
        let pts = random_points(10_000, 13);
        let tree = Octree::build(
            &pts,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let search = NeighborSearch::new(&tree, Periodicity::open(Aabb::unit()));
        let mut stats = TraversalStats::default();
        let mut out = Vec::new();
        search.neighbors_within(Vec3::splat(0.5), 0.03, &mut out, &mut stats);
        assert!(
            (stats.nodes_visited as usize) < tree.nodes().len() / 4,
            "visited {} of {} nodes",
            stats.nodes_visited,
            tree.nodes().len()
        );
    }
}
