//! 63-bit Morton (Z-order) keys: 21 bits per axis.
//!
//! The same key serves two purposes in the reproduction, just as in the real
//! SPH-EXA code base that followed the paper: it orders particles for the
//! linear octree (`sph-tree::octree`) and it is one of the two space-filling
//! curves offered by the domain decomposition (Table 4, "Domain
//! Decomposition: … Space Filling Curves").

use sph_math::{Aabb, Vec3};

/// Bits of resolution per axis.
pub const BITS_PER_AXIS: u32 = 21;
/// Number of cells per axis at maximum refinement.
pub const CELLS_PER_AXIS: u64 = 1 << BITS_PER_AXIS;

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart
/// (the classic "dilate by 3" bit trick).
#[inline]
pub fn spread_bits(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x1F00000000FFFF;
    x = (x | (x << 16)) & 0x1F0000FF0000FF;
    x = (x | (x << 8)) & 0x100F00F00F00F00F;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`].
#[inline]
pub fn compact_bits(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10C30C30C30C30C3;
    x = (x | (x >> 4)) & 0x100F00F00F00F00F;
    x = (x | (x >> 8)) & 0x1F0000FF0000FF;
    x = (x | (x >> 16)) & 0x1F00000000FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x
}

/// Interleave three 21-bit integer coordinates into a Morton key.
/// Bit layout: x occupies bit 0, y bit 1, z bit 2 of each triple, matching
/// the octant numbering of [`sph_math::Aabb::octant`].
#[inline]
pub fn encode_cell(ix: u64, iy: u64, iz: u64) -> u64 {
    debug_assert!(ix < CELLS_PER_AXIS && iy < CELLS_PER_AXIS && iz < CELLS_PER_AXIS);
    spread_bits(ix) | (spread_bits(iy) << 1) | (spread_bits(iz) << 2)
}

/// Recover the integer cell coordinates from a key.
#[inline]
pub fn decode_cell(key: u64) -> (u64, u64, u64) {
    (compact_bits(key), compact_bits(key >> 1), compact_bits(key >> 2))
}

/// Quantise a point inside `bounds` to integer cell coordinates.
///
/// Non-finite coordinates abort: `NaN.clamp(0.0, 1.0)` is `NaN` and
/// `NaN as u64` is 0, so a NaN position would silently land in cell
/// (0, 0, 0) and scramble the octree ordering instead of failing loudly —
/// the callers that know the particle index (octree build) check first and
/// name the offender.
#[inline]
pub fn cell_of_point(p: Vec3, bounds: &Aabb) -> (u64, u64, u64) {
    assert!(p.is_finite(), "cannot Morton-quantise non-finite point {p:?}");
    let n = bounds.normalize(p);
    let quantise = |t: f64| -> u64 {
        let clamped = t.clamp(0.0, 1.0);
        // The hi face maps to the last cell, not one past it.
        ((clamped * CELLS_PER_AXIS as f64) as u64).min(CELLS_PER_AXIS - 1)
    };
    (quantise(n.x), quantise(n.y), quantise(n.z))
}

/// Morton key of a point inside `bounds`.
#[inline]
pub fn encode_point(p: Vec3, bounds: &Aabb) -> u64 {
    let (ix, iy, iz) = cell_of_point(p, bounds);
    encode_cell(ix, iy, iz)
}

/// Centre of the cell a key addresses, mapped back into `bounds`.
pub fn decode_point(key: u64, bounds: &Aabb) -> Vec3 {
    let (ix, iy, iz) = decode_cell(key);
    let e = bounds.extent();
    let f = |i: u64, lo: f64, span: f64| lo + (i as f64 + 0.5) / CELLS_PER_AXIS as f64 * span;
    Vec3::new(f(ix, bounds.lo.x, e.x), f(iy, bounds.lo.y, e.y), f(iz, bounds.lo.z, e.z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::SplitMix64;

    #[test]
    fn spread_compact_roundtrip() {
        for v in [0u64, 1, 2, 0x155555, 0x1F_FFFF, 12345, 99999] {
            assert_eq!(compact_bits(spread_bits(v)), v, "v = {v:#x}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_random() {
        let mut rng = SplitMix64::new(17);
        for _ in 0..1000 {
            let ix = rng.next_below(CELLS_PER_AXIS);
            let iy = rng.next_below(CELLS_PER_AXIS);
            let iz = rng.next_below(CELLS_PER_AXIS);
            assert_eq!(decode_cell(encode_cell(ix, iy, iz)), (ix, iy, iz));
        }
    }

    #[test]
    fn key_fits_63_bits() {
        let max = encode_cell(CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1);
        assert!(max < (1u64 << 63));
    }

    #[test]
    fn octant_bit_convention() {
        // The three lowest bits of the key of cell (1,0,0) vs (0,1,0) vs
        // (0,0,1) must match the AABB octant convention: x → bit 0 etc.
        assert_eq!(encode_cell(1, 0, 0) & 0b111, 0b001);
        assert_eq!(encode_cell(0, 1, 0) & 0b111, 0b010);
        assert_eq!(encode_cell(0, 0, 1) & 0b111, 0b100);
    }

    #[test]
    fn locality_of_z_order() {
        // Points in the same octant of the root share the top key bits:
        // everything in the low half of x has bit 62-ish... simpler check:
        // the key of a point in the low corner is smaller than in the high
        // corner.
        let b = Aabb::unit();
        let lo = encode_point(Vec3::splat(0.01), &b);
        let hi = encode_point(Vec3::splat(0.99), &b);
        assert!(lo < hi);
    }

    #[test]
    fn point_roundtrip_within_cell() {
        let b = Aabb::new(Vec3::new(-3.0, 2.0, 0.0), Vec3::new(5.0, 4.0, 9.0));
        let mut rng = SplitMix64::new(23);
        for _ in 0..200 {
            let p = Vec3::new(
                rng.uniform(b.lo.x, b.hi.x),
                rng.uniform(b.lo.y, b.hi.y),
                rng.uniform(b.lo.z, b.hi.z),
            );
            let back = decode_point(encode_point(p, &b), &b);
            // Error bounded by one cell diagonal.
            let cell = b.extent() / CELLS_PER_AXIS as f64;
            assert!((back - p).abs().max_component() <= cell.max_component());
        }
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_coordinates_fail_loudly_instead_of_cell_zero() {
        // Regression: NaN.clamp(0,1) as u64 == 0 used to map NaN silently
        // to cell (0,0,0), scrambling the octree.
        let _ = cell_of_point(Vec3::new(0.5, f64::NAN, 0.5), &Aabb::unit());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn infinite_coordinates_fail_loudly() {
        let _ = encode_point(Vec3::new(f64::INFINITY, 0.5, 0.5), &Aabb::unit());
    }

    #[test]
    fn boundary_points_are_clamped() {
        let b = Aabb::unit();
        // Exactly on the hi face and beyond must not overflow the grid.
        let k1 = encode_point(Vec3::ONE, &b);
        let k2 = encode_point(Vec3::splat(7.0), &b);
        assert_eq!(k1, k2);
        let (ix, iy, iz) = decode_cell(k1);
        assert_eq!((ix, iy, iz), (CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1, CELLS_PER_AXIS - 1));
        let k3 = encode_point(Vec3::splat(-2.0), &b);
        assert_eq!(decode_cell(k3), (0, 0, 0));
    }

    #[test]
    fn sorted_keys_follow_z_curve_order() {
        // Classic 2×2×2 check: the eight cell keys 0..8 enumerate octants
        // in x-fastest order.
        let mut keys = Vec::new();
        for iz in 0..2u64 {
            for iy in 0..2u64 {
                for ix in 0..2u64 {
                    keys.push(encode_cell(
                        ix << (BITS_PER_AXIS - 1),
                        iy << (BITS_PER_AXIS - 1),
                        iz << (BITS_PER_AXIS - 1),
                    ));
                }
            }
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
