//! Barnes–Hut self-gravity with multipole expansions (Algorithm 1, step 4).
//!
//! Table 1: SPHYNX evaluates gravity with multipoles up to quadrupole
//! ("4-pole"), ChaNGa up to hexadecapole ("16-pole"). This module
//! implements monopole and quadrupole expansions exactly; the cost of the
//! higher-order terms ChaNGa carries is represented in the performance
//! model by a per-cell-interaction cost factor (see DESIGN.md §2 —
//! substitution table), while force *accuracy* is verified here against
//! direct summation.
//!
//! Conventions: `G` is configurable (the Evrard test uses `G = 1`),
//! softening is Plummer (`φ = −Gm/√(r²+ε²)`), and the multipole acceptance
//! criterion is the classic opening angle: a cell of size `L` at distance
//! `d` from the target is accepted when `L/d < θ`.

use crate::octree::Octree;
use crate::TraversalStats;
use rayon::prelude::*;
use sph_math::{Mat3, SymTensor3, Vec3, REDUCE_CHUNK};

/// Expansion order of accepted cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultipoleOrder {
    /// Centre-of-mass only.
    Monopole,
    /// Monopole + traceless quadrupole (SPHYNX's "4-pole").
    Quadrupole,
    /// Monopole + quadrupole + octupole — one order further toward
    /// ChaNGa's hexadecapole ("16-pole") expansion.
    Octupole,
}

impl MultipoleOrder {
    /// Numeric order (highest multipole term carried).
    pub fn degree(self) -> u8 {
        match self {
            MultipoleOrder::Monopole => 1,
            MultipoleOrder::Quadrupole => 2,
            MultipoleOrder::Octupole => 3,
        }
    }
}

/// Gravity parameters.
#[derive(Debug, Clone, Copy)]
pub struct GravityConfig {
    /// Gravitational constant.
    pub g: f64,
    /// Opening angle θ of the MAC; smaller = more accurate and slower.
    pub theta: f64,
    /// Plummer softening length ε.
    pub softening: f64,
    /// Expansion order.
    pub order: MultipoleOrder,
}

impl Default for GravityConfig {
    fn default() -> Self {
        GravityConfig { g: 1.0, theta: 0.5, softening: 1e-4, order: MultipoleOrder::Quadrupole }
    }
}

/// Multipole moments of one tree node, all about the node's `com`.
#[derive(Debug, Clone, Copy, Default)]
struct Moments {
    mass: f64,
    com: Vec3,
    /// Raw second moment `M2_ab = Σ m d_a d_b` (the traceless quadrupole
    /// is derived as `Q = 3·M2 − tr(M2)·I` at evaluation time).
    m2: Mat3,
    /// Raw third moment `S_abc = Σ m d_a d_b d_c`.
    s3: SymTensor3,
    /// Trace vector `t_a = Σ m d² d_a` (the octupole trace part).
    t: Vec3,
}

/// Gravity solver bound to a built octree.
pub struct GravitySolver<'a> {
    tree: &'a Octree,
    masses_sorted: Vec<f64>,
    moments: Vec<Moments>,
    config: GravityConfig,
}

/// Result of a field evaluation at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GravitySample {
    pub accel: Vec3,
    pub potential: f64,
}

impl<'a> GravitySolver<'a> {
    /// Precompute moments for every node. `masses` is indexed by *original*
    /// particle id (same indexing the octree was built from).
    pub fn new(tree: &'a Octree, masses: &[f64], config: GravityConfig) -> Self {
        assert_eq!(masses.len(), tree.len(), "masses/positions length mismatch");
        assert!(config.theta > 0.0, "θ must be positive");
        let masses_sorted: Vec<f64> = tree.order().iter().map(|&i| masses[i as usize]).collect();

        // Bottom-up moment computation via post-order accumulation with the
        // parallel-axis shift — O(nodes) instead of O(N log N).
        let nodes = tree.nodes();
        let pos = tree.sorted_positions();
        let mut moments = vec![Moments::default(); nodes.len()];
        // Nodes are stored so children always come after parents; iterate
        // in reverse to process children first.
        for ni in (0..nodes.len()).rev() {
            let node = &nodes[ni];
            let mut mass = 0.0;
            let mut weighted = Vec3::ZERO;
            if node.is_leaf() {
                for k in node.start..node.end {
                    let m = masses_sorted[k as usize];
                    // sph-lint: allow(raw-accumulation) — FROZEN: leaf
                    // monopole sums in Morton order are part of the
                    // gravity bit-identity contract across backends.
                    mass += m;
                    // sph-lint: allow(raw-accumulation) — FROZEN: same
                    // contract as `mass` above (identical loop, order).
                    weighted += pos[k as usize] * m;
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        // sph-lint: allow(raw-accumulation) — FROZEN merge:
                        // 8-term child moments fold in child-slot order;
                        // part of the gravity bit-identity contract.
                        mass += moments[c as usize].mass;
                        // sph-lint: allow(raw-accumulation) — FROZEN: same
                        // contract as `mass` above (identical loop).
                        weighted += moments[c as usize].com * moments[c as usize].mass;
                    }
                }
            }
            let com = if mass > 0.0 { weighted / mass } else { node.cell.center() };
            let mut m2 = Mat3::ZERO;
            let mut s3 = SymTensor3::ZERO;
            let mut t = Vec3::ZERO;
            if node.is_leaf() {
                for k in node.start..node.end {
                    let m = masses_sorted[k as usize];
                    let d = pos[k as usize] - com;
                    m2.add_scaled_outer(d, m);
                    s3.add_scaled_cube(d, m);
                    // sph-lint: allow(raw-accumulation) — FROZEN: leaf
                    // octupole trace vector in Morton order; part of the
                    // gravity bit-identity contract.
                    t += d * (m * d.norm_sq());
                }
            } else {
                for &c in &node.children {
                    if c == u32::MAX {
                        continue;
                    }
                    let ch = &moments[c as usize];
                    // Parallel-axis shifts to the parent COM (s = child
                    // COM − parent COM; Σ m d = 0 about the child COM):
                    //   M2' = M2 + m s⊗s
                    //   S3' = S3 + sym(s ⊗ M2) + m s⊗s⊗s
                    //   t'  = t + 2 M2·s + tr(M2)·s + m s² s
                    let s = ch.com - com;
                    // sph-lint: allow(raw-accumulation) — FROZEN: the
                    // parallel-axis moment merges below run in child-slot
                    // order; part of the gravity bit-identity contract.
                    m2 += ch.m2;
                    m2.add_scaled_outer(s, ch.mass);
                    // sph-lint: allow(raw-accumulation) — FROZEN: same
                    // contract as the `m2` merge above (identical loop).
                    s3 += ch.s3;
                    s3.add_scaled_sym_outer(s, &ch.m2, 1.0);
                    s3.add_scaled_cube(s, ch.mass);
                    // sph-lint: allow(raw-accumulation) — FROZEN: same
                    // contract as the `m2` merge above (identical loop).
                    t += ch.t
                        + ch.m2.mul_vec(s) * 2.0
                        + s * ch.m2.trace()
                        + s * (ch.mass * s.norm_sq());
                }
            }
            moments[ni] = Moments { mass, com, m2, s3, t };
        }
        GravitySolver { tree, masses_sorted, moments, config }
    }

    /// Total mass seen by the solver (root monopole) — cheap invariant.
    pub fn total_mass(&self) -> f64 {
        self.moments[0].mass
    }

    /// Evaluate acceleration and potential at `point`, optionally skipping
    /// the particle with original index `skip` (self-interaction).
    pub fn field_at(
        &self,
        point: Vec3,
        skip: Option<u32>,
        stats: &mut TraversalStats,
    ) -> GravitySample {
        let g = self.config.g;
        let eps2 = self.config.softening * self.config.softening;
        let theta2 = self.config.theta * self.config.theta;
        let nodes = self.tree.nodes();
        let pos = self.tree.sorted_positions();
        let order = self.tree.order();

        let mut accel = Vec3::ZERO;
        let mut potential = 0.0;
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = &nodes[ni as usize];
            stats.nodes_visited += 1;
            let mom = &self.moments[ni as usize];
            if mom.mass <= 0.0 {
                continue;
            }
            let d = point - mom.com;
            let dist2 = d.norm_sq();
            let size = node.tight.max_extent();
            // MAC: accept when (L/d)² < θ² and the point is safely outside
            // the cell (dist² > 0 guards the degenerate self-cell case).
            let accept = !node.is_leaf()
                && dist2 > 0.0
                && size * size < theta2 * dist2
                && node.tight.dist_sq_to_point(point) > 0.0;
            if accept {
                stats.p2m_interactions += 1;
                let r2 = dist2 + eps2;
                let r = r2.sqrt();
                let inv_r3 = 1.0 / (r2 * r);
                // Monopole.
                accel -= d * (g * mom.mass * inv_r3);
                potential -= g * mom.mass / r;
                if self.config.order.degree() >= 2 {
                    // Traceless quadrupole from the raw second moment:
                    // Q = 3·M2 − tr(M2)·I ⇒ Q·d = 3 M2·d − tr(M2) d.
                    let tr_m2 = mom.m2.trace();
                    let qd = mom.m2.mul_vec(d) * 3.0 - d * tr_m2;
                    let dqd = d.dot(qd);
                    let inv_r5 = inv_r3 / r2;
                    let inv_r7 = inv_r5 / r2;
                    // φ₂ = −G (d·Q·d) / (2 r⁵)
                    // a₂ = G Q d / r⁵ − (5G/2)(d·Q·d) d / r⁷
                    potential -= 0.5 * g * dqd * inv_r5;
                    // sph-lint: allow(raw-accumulation) — FROZEN: the
                    // multipole traversal accumulates in stack order;
                    // part of the gravity bit-identity contract.
                    accel += qd * (g * inv_r5) - d * (2.5 * g * dqd * inv_r7);
                    if self.config.order.degree() >= 3 {
                        // Octupole (Cartesian Taylor term):
                        // φ₃ = −G [5 S:ddd − 3 (t·d) r²] / (2 r⁷)
                        // a₃ = G/2 [ (15 S:dd − 3 t r² − 6 (t·d) d)/r⁷
                        //            − 7 (5 S:ddd − 3 (t·d) r²) d / r⁹ ]
                        let s_dd = mom.s3.contract_twice(d);
                        let s_ddd = s_dd.dot(d);
                        let td = mom.t.dot(d);
                        let inv_r9 = inv_r7 / r2;
                        let poly = 5.0 * s_ddd - 3.0 * td * r2;
                        potential -= 0.5 * g * poly * inv_r7;
                        // sph-lint: allow(raw-accumulation) — FROZEN: same
                        // traversal-order contract as the quadrupole term.
                        accel += (s_dd * 15.0 - mom.t * (3.0 * r2) - d * (6.0 * td))
                            * (0.5 * g * inv_r7)
                            - d * (3.5 * g * poly * inv_r9);
                    }
                }
            } else if node.is_leaf() {
                for k in node.start..node.end {
                    let oi = order[k as usize];
                    if skip == Some(oi) {
                        continue;
                    }
                    stats.p2p_interactions += 1;
                    let dj = point - pos[k as usize];
                    let r2 = dj.norm_sq() + eps2;
                    let r = r2.sqrt();
                    let m = self.masses_sorted[k as usize];
                    accel -= dj * (g * m / (r2 * r));
                    potential -= g * m / r;
                }
            } else {
                for &c in &node.children {
                    if c != u32::MAX {
                        stack.push(c);
                    }
                }
            }
        }
        GravitySample { accel, potential }
    }

    /// Accelerations and potentials at every particle position, in original
    /// particle order, skipping self-interaction. Parallel over targets.
    pub fn accelerations(&self, positions: &[Vec3]) -> (Vec<GravitySample>, TraversalStats) {
        assert_eq!(positions.len(), self.tree.len());
        // Chunked map (fixed REDUCE_CHUNK boundaries) + ordered reduce of
        // the per-chunk traversal counters.
        let chunks: Vec<(Vec<GravitySample>, TraversalStats)> = positions
            .par_chunks(REDUCE_CHUNK)
            .enumerate()
            .map(|(c, chunk)| {
                let base = c * REDUCE_CHUNK;
                let mut stats = TraversalStats::default();
                let samples = chunk
                    .iter()
                    .enumerate()
                    .map(|(off, &p)| self.field_at(p, Some((base + off) as u32), &mut stats))
                    .collect();
                (samples, stats)
            })
            .collect();
        let mut merged = TraversalStats::default();
        let mut out = Vec::with_capacity(positions.len());
        for (samples, stats) in chunks {
            merged.merge(&stats);
            out.extend(samples);
        }
        (out, merged)
    }
}

/// O(N²) direct-summation reference (validation only).
pub fn direct_field(
    positions: &[Vec3],
    masses: &[f64],
    target: Vec3,
    skip: Option<usize>,
    g: f64,
    softening: f64,
) -> GravitySample {
    let eps2 = softening * softening;
    let mut accel = Vec3::ZERO;
    let mut potential = 0.0;
    for (j, (&pj, &mj)) in positions.iter().zip(masses).enumerate() {
        if skip == Some(j) {
            continue;
        }
        let d = target - pj;
        let r2 = d.norm_sq() + eps2;
        let r = r2.sqrt();
        accel -= d * (g * mj / (r2 * r));
        potential -= g * mj / r;
    }
    GravitySample { accel, potential }
}

/// Total gravitational energy `½ Σ mᵢ φᵢ` from per-particle potentials.
/// Diagnostic-only reduction (never feeds a trajectory), so it uses the
/// compensated accumulator.
pub fn gravitational_energy(masses: &[f64], potentials: &[f64]) -> f64 {
    assert_eq!(masses.len(), potentials.len());
    let mut acc = sph_math::KahanAccumulator::new();
    for (&m, &p) in masses.iter().zip(potentials) {
        acc.add(m * p);
    }
    0.5 * acc.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::octree::{Octree, OctreeConfig};
    use sph_math::{Aabb, SplitMix64};

    fn random_system(n: usize, seed: u64) -> (Vec<Vec3>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let pos: Vec<Vec3> =
            (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect();
        let masses: Vec<f64> = (0..n).map(|_| rng.uniform(0.5, 1.5) / n as f64).collect();
        (pos, masses)
    }

    fn build_solver<'a>(
        tree: &'a Octree,
        masses: &[f64],
        theta: f64,
        order: MultipoleOrder,
    ) -> GravitySolver<'a> {
        GravitySolver::new(tree, masses, GravityConfig { g: 1.0, theta, softening: 1e-3, order })
    }

    #[test]
    fn total_mass_is_conserved_by_moments() {
        let (pos, masses) = random_system(500, 2);
        let tree = Octree::build(&pos, &Aabb::unit(), OctreeConfig::default());
        let solver = build_solver(&tree, &masses, 0.5, MultipoleOrder::Quadrupole);
        let exact: f64 = masses.iter().sum();
        assert!((solver.total_mass() - exact).abs() < 1e-12);
    }

    #[test]
    fn two_body_inverse_square() {
        // A single far-away source must give the Newtonian field.
        let pos = vec![Vec3::splat(0.5)];
        let masses = vec![2.0];
        let tree = Octree::build(&pos, &Aabb::unit(), OctreeConfig::default());
        let solver = build_solver(&tree, &masses, 0.5, MultipoleOrder::Monopole);
        let target = Vec3::new(3.5, 0.5, 0.5); // distance 3 along x
        let mut stats = TraversalStats::default();
        let s = solver.field_at(target, None, &mut stats);
        let expected_a = -2.0 / 9.0; // −GM/r²
        assert!((s.accel.x - expected_a).abs() < 1e-5, "ax = {}", s.accel.x);
        assert!(s.accel.y.abs() < 1e-12 && s.accel.z.abs() < 1e-12);
        assert!((s.potential + 2.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn barnes_hut_matches_direct_sum() {
        let (pos, masses) = random_system(800, 9);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        for (theta, order, tol) in [
            (0.5, MultipoleOrder::Monopole, 3e-2),
            (0.5, MultipoleOrder::Quadrupole, 6e-3),
            (0.3, MultipoleOrder::Quadrupole, 2e-3),
        ] {
            let solver = build_solver(&tree, &masses, theta, order);
            let mut max_rel = 0.0_f64;
            for i in (0..pos.len()).step_by(37) {
                let mut stats = TraversalStats::default();
                let bh = solver.field_at(pos[i], Some(i as u32), &mut stats);
                let exact = direct_field(&pos, &masses, pos[i], Some(i), 1.0, 1e-3);
                let rel = (bh.accel - exact.accel).norm() / exact.accel.norm().max(1e-12);
                max_rel = max_rel.max(rel);
            }
            assert!(max_rel < tol, "θ={theta} {order:?}: max rel accel error {max_rel} ≥ {tol}");
        }
    }

    #[test]
    fn octupole_beats_quadrupole() {
        // Each added multipole order must reduce the acceleration error at
        // a fixed opening angle (the point of carrying them: ChaNGa's
        // 16-pole expansion buys accuracy per accepted cell).
        let (pos, masses) = random_system(700, 21);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let theta = 0.5;
        let mut errs = Vec::new();
        for order in
            [MultipoleOrder::Monopole, MultipoleOrder::Quadrupole, MultipoleOrder::Octupole]
        {
            let solver = build_solver(&tree, &masses, theta, order);
            let mut err = 0.0;
            let mut st = TraversalStats::default();
            for i in (0..pos.len()).step_by(23) {
                let bh = solver.field_at(pos[i], Some(i as u32), &mut st).accel;
                let exact = direct_field(&pos, &masses, pos[i], Some(i), 1.0, 1e-3).accel;
                err += (bh - exact).norm() / exact.norm().max(1e-12);
            }
            errs.push(err);
        }
        assert!(errs[1] < 0.7 * errs[0], "quad {} !< mono {}", errs[1], errs[0]);
        assert!(errs[2] < 0.75 * errs[1], "oct {} !< quad {}", errs[2], errs[1]);
    }

    #[test]
    fn octupole_potential_matches_direct_sum_tightly() {
        let (pos, masses) = random_system(400, 29);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let solver = build_solver(&tree, &masses, 0.5, MultipoleOrder::Octupole);
        let mut st = TraversalStats::default();
        for i in [5usize, 111, 333] {
            let bh = solver.field_at(pos[i], Some(i as u32), &mut st);
            let exact = direct_field(&pos, &masses, pos[i], Some(i), 1.0, 1e-3);
            let rel = (bh.potential - exact.potential).abs() / exact.potential.abs();
            assert!(rel < 2e-3, "octupole potential rel err {rel}");
        }
    }

    #[test]
    fn multipole_degrees() {
        assert_eq!(MultipoleOrder::Monopole.degree(), 1);
        assert_eq!(MultipoleOrder::Quadrupole.degree(), 2);
        assert_eq!(MultipoleOrder::Octupole.degree(), 3);
    }

    #[test]
    fn quadrupole_beats_monopole() {
        let (pos, masses) = random_system(600, 12);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let mono = build_solver(&tree, &masses, 0.7, MultipoleOrder::Monopole);
        let quad = build_solver(&tree, &masses, 0.7, MultipoleOrder::Quadrupole);
        let mut err_mono = 0.0;
        let mut err_quad = 0.0;
        for i in (0..pos.len()).step_by(29) {
            let mut st = TraversalStats::default();
            let exact = direct_field(&pos, &masses, pos[i], Some(i), 1.0, 1e-3);
            let am = mono.field_at(pos[i], Some(i as u32), &mut st).accel;
            let aq = quad.field_at(pos[i], Some(i as u32), &mut st).accel;
            err_mono += (am - exact.accel).norm();
            err_quad += (aq - exact.accel).norm();
        }
        assert!(
            err_quad < err_mono * 0.7,
            "quadrupole ({err_quad}) should clearly beat monopole ({err_mono})"
        );
    }

    #[test]
    fn smaller_theta_costs_more_interactions() {
        let (pos, masses) = random_system(2000, 15);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let loose = build_solver(&tree, &masses, 0.9, MultipoleOrder::Monopole);
        let tight = build_solver(&tree, &masses, 0.3, MultipoleOrder::Monopole);
        let (_, st_loose) = loose.accelerations(&pos);
        let (_, st_tight) = tight.accelerations(&pos);
        assert!(
            st_tight.total_interactions() > 2 * st_loose.total_interactions(),
            "tight {} vs loose {}",
            st_tight.total_interactions(),
            st_loose.total_interactions()
        );
    }

    #[test]
    fn momentum_conservation_of_pairwise_forces() {
        // Direct sum: Σ m a = 0 exactly (Newton's third law); Barnes–Hut
        // violates it only at the multipole truncation level.
        let (pos, masses) = random_system(300, 33);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 8, parallel_sort: false },
        );
        let solver = build_solver(&tree, &masses, 0.4, MultipoleOrder::Quadrupole);
        let (samples, _) = solver.accelerations(&pos);
        let net: Vec3 =
            samples.iter().zip(&masses).map(|(s, &m)| s.accel * m).fold(Vec3::ZERO, |a, b| a + b);
        // Scale: typical |m a| ~ G m²/r² ~ (1/300)² × 300 pairs ≈ 1e-3.
        let typical: f64 =
            samples.iter().zip(&masses).map(|(s, &m)| (s.accel * m).norm()).sum::<f64>() / 300.0;
        assert!(
            net.norm() < 0.05 * typical * 300.0_f64.sqrt(),
            "net force {net:?} too large vs typical {typical}"
        );
    }

    #[test]
    fn gravitational_energy_sign_and_scaling() {
        let (pos, masses) = random_system(200, 44);
        let tree = Octree::build(&pos, &Aabb::unit(), OctreeConfig::default());
        let solver = build_solver(&tree, &masses, 0.4, MultipoleOrder::Quadrupole);
        let (samples, _) = solver.accelerations(&pos);
        let pots: Vec<f64> = samples.iter().map(|s| s.potential).collect();
        let e = gravitational_energy(&masses, &pots);
        assert!(e < 0.0, "bound system must have negative energy, got {e}");
    }

    #[test]
    fn potential_matches_direct_sum() {
        let (pos, masses) = random_system(400, 50);
        let tree = Octree::build(
            &pos,
            &Aabb::unit(),
            OctreeConfig { max_leaf_size: 16, parallel_sort: false },
        );
        let solver = build_solver(&tree, &masses, 0.4, MultipoleOrder::Quadrupole);
        let mut st = TraversalStats::default();
        for i in [0usize, 111, 333] {
            let bh = solver.field_at(pos[i], Some(i as u32), &mut st);
            let exact = direct_field(&pos, &masses, pos[i], Some(i), 1.0, 1e-3);
            let rel = (bh.potential - exact.potential).abs() / exact.potential.abs();
            assert!(rel < 5e-3, "potential rel err {rel}");
        }
    }

    #[test]
    fn skip_excludes_self() {
        let pos = vec![Vec3::splat(0.3), Vec3::splat(0.7)];
        let masses = vec![1.0, 1.0];
        let tree = Octree::build(&pos, &Aabb::unit(), OctreeConfig::default());
        let solver = build_solver(&tree, &masses, 0.5, MultipoleOrder::Monopole);
        let mut st = TraversalStats::default();
        let with_skip = solver.field_at(pos[0], Some(0), &mut st);
        let without = solver.field_at(pos[0], None, &mut st);
        // Without skip the softened self-term adds −Gm/ε to the potential.
        assert!(without.potential < with_skip.potential);
        // Self-force is zero either way (d = 0 ⇒ softened force 0).
        assert!((with_skip.accel - without.accel).norm() < 1e-12);
    }
}
