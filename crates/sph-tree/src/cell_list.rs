//! Uniform cell-list neighbour pipeline (the per-step hot path).
//!
//! The octree walk in [`crate::neighbors`] answers one ball query at a
//! time by chasing node pointers; every kernel pass used to re-run it per
//! particle. This module replaces that inner loop with the classic
//! cell-list pipeline: once per step the particles are binned into a
//! uniform grid (a counting sort keyed by the flattened cell index — the
//! same spatial hash a Morton key encodes, without needing the bit
//! interleave), and ball queries become scans of the ≤ 27 (or more, for
//! radii above the cell edge) cells overlapping the query ball. The
//! results of the smoothing-length iteration are assembled into **compact
//! CSR neighbour lists** ([`NeighborLists`]) that every downstream kernel
//! pass (volume, IAD, velocity gradients, forces) streams over — the
//! octree is kept only for gravity.
//!
//! Exactness contract: a [`CellGrid`] query evaluates the *identical*
//! floating-point accept test as the octree walk — the same radius clamp,
//! the same per-image Euclidean `dist_sq` against the same ghost-offset
//! images — so both backends return the same neighbour *set* for every
//! query, bit-for-bit. That is what lets the drivers switch backends
//! without perturbing a single trajectory: identical sets → identical
//! h-iteration → identical ascending-id summation order → identical sums.

use crate::TraversalStats;
use rayon::prelude::*;
use sph_math::{Periodicity, Vec3, REDUCE_CHUNK};

/// A backend that answers fixed-radius ball queries: the octree walk
/// ([`crate::NeighborSearch`]) or the cell grid ([`CellGrid`]). The
/// density / smoothing-length pass in `sph-core` is generic over this, so
/// both paths share one implementation (and the benches can race them).
pub trait NeighborQuery: Sync {
    /// Largest usable search radius: strictly below half of every
    /// periodic span (where the minimum image becomes ambiguous), the
    /// input radius otherwise.
    fn clamp_radius(&self, radius: f64) -> f64;

    /// Indices (original particle ids) of all particles within `radius`
    /// of `center`, appended to `out` (self included when in range).
    /// Records a [`TraversalStats::radius_clamps`] event when the
    /// periodic half-span clamp engages.
    fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    );

    /// Count of neighbours within `radius` of `center`, with no
    /// allocation.
    fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize;

    /// Like [`NeighborQuery::neighbors_within`], but each id arrives with
    /// the squared distance the accept test compared against `r²` — the
    /// Euclidean `dist_sq` to the accepting periodic image, identical on
    /// both backends by the exactness contract. Because the half-span
    /// clamp keeps the ball strictly smaller than every periodic
    /// half-span, at most one image of any particle can lie inside it, so
    /// the distance is unique per id. The smoothing-length iteration
    /// caches these pairs to answer shrinking-radius rounds by filtering
    /// instead of re-walking the structure.
    fn neighbors_with_dist(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<(u32, f64)>,
        stats: &mut TraversalStats,
    );
}

/// Flattened (CSR) neighbour lists for a set of query particles: one
/// `offsets` array and one flat `indices` array, shared by every kernel
/// pass of the step.
#[derive(Debug, Clone, Default)]
pub struct NeighborLists {
    /// `offsets[k]..offsets[k+1]` indexes `indices` for query `k`.
    offsets: Vec<u32>,
    /// Neighbour particle ids (original indexing), self included.
    indices: Vec<u32>,
}

impl NeighborLists {
    /// Assemble from per-query rows (test/interop convenience; the hot
    /// path builds the CSR arrays directly).
    pub fn from_lists(lists: Vec<Vec<u32>>) -> Self {
        // sph-lint: allow(raw-accumulation) — integer size bookkeeping;
        // usize addition is exact, no FP order to freeze.
        let total: usize = lists.iter().map(|l| l.len()).sum();
        assert!(total <= u32::MAX as usize, "neighbour count overflows u32 CSR offsets");
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u32);
        let mut indices = Vec::with_capacity(total);
        for l in lists {
            indices.extend_from_slice(&l);
            offsets.push(indices.len() as u32);
        }
        NeighborLists { offsets, indices }
    }

    /// Assemble from raw CSR arrays. `offsets` must be monotone with
    /// `offsets[0] == 0` and `offsets.last() == indices.len()`.
    pub fn from_csr(offsets: Vec<u32>, indices: Vec<u32>) -> Self {
        assert!(!offsets.is_empty() && offsets[0] == 0, "CSR offsets must start at 0");
        assert_eq!(
            offsets.last().copied().unwrap_or(0) as usize,
            indices.len(),
            "CSR offsets/indices mismatch"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "CSR offsets must be monotone");
        NeighborLists { offsets, indices }
    }

    /// Neighbour slice of the k-th query particle.
    #[inline]
    pub fn neighbors(&self, k: usize) -> &[u32] {
        let s = self.offsets[k] as usize;
        let e = self.offsets[k + 1] as usize;
        &self.indices[s..e]
    }

    /// Number of query particles covered.
    pub fn query_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of stored neighbour entries.
    pub fn total_neighbors(&self) -> usize {
        self.indices.len()
    }

    /// Mean neighbours per query.
    pub fn mean_count(&self) -> f64 {
        if self.query_count() == 0 {
            return 0.0;
        }
        self.total_neighbors() as f64 / self.query_count() as f64
    }

    /// Symmetric closure of the lists: if `j ∈ N(i)` then also `i ∈ N(j)`.
    ///
    /// The density pass gathers within each particle's *own* support
    /// `2h_i`; with per-particle smoothing lengths that relation is not
    /// symmetric, but the pairwise momentum/energy equations must see
    /// every pair from both sides or conservation is silently broken.
    /// Only valid when the lists cover *all* particles (query `k` ⇔
    /// particle `k`).
    ///
    /// Rows must be (and stay) strictly ascending. The closure is built
    /// allocation-lean: a reverse-edge CSR (scattered in ascending-`k`
    /// order, so every reverse row is already sorted) merged row-by-row
    /// with the forward lists — no per-particle sort or dedup pass.
    pub fn symmetrized(&self) -> NeighborLists {
        let n = self.query_count();
        // Reverse-edge degrees: how many k ≠ j list j as a neighbour.
        let mut rev_off = vec![0u32; n + 1];
        for &j in &self.indices {
            assert!((j as usize) < n, "symmetrized() requires full-system lists");
        }
        for k in 0..n {
            for &j in self.neighbors(k) {
                if j as usize != k {
                    rev_off[j as usize + 1] += 1;
                }
            }
        }
        for j in 0..n {
            rev_off[j + 1] += rev_off[j];
        }
        let mut rev_idx = vec![0u32; rev_off[n] as usize];
        let mut cursor: Vec<u32> = rev_off[..n].to_vec();
        for k in 0..n {
            for &j in self.neighbors(k) {
                if j as usize != k {
                    let c = &mut cursor[j as usize];
                    rev_idx[*c as usize] = k as u32;
                    *c += 1;
                }
            }
        }
        // Merge-union each forward row with its (sorted) reverse row.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut indices = Vec::with_capacity(self.indices.len() + rev_idx.len());
        for k in 0..n {
            let a = self.neighbors(k);
            let b = &rev_idx[rev_off[k] as usize..rev_off[k + 1] as usize];
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        indices.push(a[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        indices.push(b[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        indices.push(a[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            indices.extend_from_slice(&a[i..]);
            indices.extend_from_slice(&b[j..]);
            offsets.push(indices.len() as u32);
        }
        NeighborLists { offsets, indices }
    }
}

/// Soft cap on the total cell count, as a multiple of the particle count:
/// finer grids than ~one particle per cell only add empty-cell scan
/// overhead and bloat the `cell_offsets` array.
const MAX_CELLS_PER_PARTICLE: usize = 4;

/// Uniform cell grid over a particle set — the per-step neighbour
/// structure of the pipeline.
///
/// Built once per derivative evaluation with a counting sort (O(n), no
/// key sort), then shared read-only by every query of the step. On
/// periodic axes the grid spans exactly the periodic domain; on open axes
/// it spans the tight particle bounds. Queries whose radius exceeds the
/// cell edge scan proportionally more rings, so the smoothing-length
/// iteration can grow its radius freely without rebuilding.
pub struct CellGrid {
    periodicity: Periodicity,
    /// Grid origin (per axis: domain lo on periodic axes, tight particle
    /// minimum on open axes).
    lo: Vec3,
    /// Cells per axis (≥ 1).
    dims: [usize; 3],
    /// `dims[axis] / span[axis]`; 0 for a degenerate (single-cell) axis.
    inv_width: [f64; 3],
    /// CSR over cells: `cell_offsets[c]..cell_offsets[c+1]` indexes the
    /// sorted arrays below. Length `ncells + 1`.
    cell_offsets: Vec<u32>,
    /// Original particle ids, cell-major, ascending within each cell.
    entries: Vec<u32>,
    /// Positions in the same order as `entries` (cache-friendly scans).
    sorted_pos: Vec<Vec3>,
}

impl CellGrid {
    /// Build over `positions` with a target cell edge of `cell_size`
    /// (the expected search radius, e.g. `2·h̄`). The actual edge is at
    /// least `cell_size` on every axis (never smaller, so a typical query
    /// scans ≤ 27 cells) and the total cell count is capped at
    /// [`MAX_CELLS_PER_PARTICLE`]·n. Panics on an empty particle set or
    /// non-finite positions, like [`crate::Octree::build`].
    pub fn build(positions: &[Vec3], periodicity: Periodicity, cell_size: f64) -> CellGrid {
        Self::build_impl(positions, periodicity, cell_size)
    }

    /// Build a grid tuned for ball queries up to `max_radius`: the cell
    /// edge is set to **half** that radius. Radius-sized cells scan a
    /// `(4r)³ = 64r³` volume for a `4πr³/3 ≈ 4.2r³` ball (a 15× candidate
    /// overscan); half-radius cells shrink the scanned volume to
    /// `(3r)³ = 27r³` — ~2.4× fewer distance tests for a slightly longer
    /// (but contiguous and branch-light) cell loop. This is what the
    /// drivers call; [`CellGrid::build`] keeps the exact edge for tests
    /// and callers with their own tuning. Query results are identical
    /// either way — cell size is purely a performance knob.
    pub fn for_radius(positions: &[Vec3], periodicity: Periodicity, max_radius: f64) -> CellGrid {
        Self::build_impl(positions, periodicity, 0.5 * max_radius)
    }

    fn build_impl(positions: &[Vec3], periodicity: Periodicity, cell_size: f64) -> CellGrid {
        assert!(!positions.is_empty(), "cell grid: empty particle set");
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell grid: bad target cell size {cell_size}"
        );
        // Grid box: exact periodic domain on wrapping axes (so images and
        // wrapped positions index consistently), tight bounds elsewhere.
        let mut lo = Vec3::ZERO;
        let mut span = [0.0f64; 3];
        for (axis, span_axis) in span.iter_mut().enumerate() {
            if periodicity.periodic[axis] {
                *lo.component_mut(axis) = periodicity.domain.lo.component(axis);
                *span_axis = periodicity.domain.extent().component(axis);
            } else {
                let mut mn = f64::INFINITY;
                let mut mx = f64::NEG_INFINITY;
                for (i, p) in positions.iter().enumerate() {
                    let c = p.component(axis);
                    assert!(
                        c.is_finite(),
                        "cell grid: non-finite position for particle {i}: {p:?}"
                    );
                    mn = mn.min(c);
                    mx = mx.max(c);
                }
                *lo.component_mut(axis) = mn;
                *span_axis = mx - mn;
            }
        }
        let mut dims = [1usize; 3];
        for axis in 0..3 {
            if span[axis] > 0.0 {
                dims[axis] = ((span[axis] / cell_size).floor() as usize).max(1);
            }
        }
        // Deterministic cap: halve the largest axis until the total cell
        // count is proportionate to the particle count.
        let cap = (MAX_CELLS_PER_PARTICLE * positions.len()).max(8);
        while dims[0] * dims[1] * dims[2] > cap {
            let widest = (0..3).max_by_key(|&a| dims[a]).unwrap_or(0);
            dims[widest] = dims[widest].div_ceil(2);
        }
        let mut inv_width = [0.0f64; 3];
        for axis in 0..3 {
            if span[axis] > 0.0 {
                inv_width[axis] = dims[axis] as f64 / span[axis];
            }
        }

        let grid = CellGrid {
            periodicity,
            lo,
            dims,
            inv_width,
            cell_offsets: Vec::new(),
            entries: Vec::new(),
            sorted_pos: Vec::new(),
        };
        let ncells = dims[0] * dims[1] * dims[2];

        // Counting sort by flattened cell index. Iterating particles in
        // ascending id keeps each cell's entries ascending — the
        // canonical order downstream summation relies on — and the whole
        // build is a deterministic O(n + ncells) sequential pass (cheaper
        // than any parallel alternative at the cell counts this serves).
        let mut cell_of = Vec::with_capacity(positions.len());
        let mut counts = vec![0u32; ncells + 1];
        for (i, p) in positions.iter().enumerate() {
            assert!(p.is_finite(), "cell grid: non-finite position for particle {i}: {p:?}");
            let c = grid.flat_cell(grid.cell_coord(*p));
            cell_of.push(c as u32);
            counts[c + 1] += 1;
        }
        for c in 0..ncells {
            counts[c + 1] += counts[c];
        }
        let mut entries = vec![0u32; positions.len()];
        let mut sorted_pos = vec![Vec3::ZERO; positions.len()];
        let mut cursor: Vec<u32> = counts[..ncells].to_vec();
        for (i, &c) in cell_of.iter().enumerate() {
            let slot = cursor[c as usize] as usize;
            entries[slot] = i as u32;
            sorted_pos[slot] = positions[i];
            cursor[c as usize] += 1;
        }
        CellGrid { cell_offsets: counts, entries, sorted_pos, ..grid }
    }

    /// Cells per axis (diagnostics/tests).
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    /// Number of particles indexed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no particles are indexed (unreachable via `build`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Grid coordinates of a position, clamped into the grid (positions
    /// exactly on the high face — FP wrap can land there — fold into the
    /// last cell).
    #[inline]
    fn cell_coord(&self, p: Vec3) -> [usize; 3] {
        let mut c = [0usize; 3];
        for (axis, c_axis) in c.iter_mut().enumerate() {
            let t = (p.component(axis) - self.lo.component(axis)) * self.inv_width[axis];
            *c_axis = (t.floor().max(0.0) as usize).min(self.dims[axis] - 1);
        }
        c
    }

    /// Flatten grid coordinates (x fastest, like the Morton cell layout).
    #[inline]
    fn flat_cell(&self, c: [usize; 3]) -> usize {
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Inclusive cell range covering `[v − r, v + r]` on one axis,
    /// clamped into the grid. Ghost images handle periodic wrap, so
    /// clamping (not modular wrap) is correct on every axis.
    #[inline]
    fn axis_range(&self, axis: usize, v: f64, r: f64) -> (usize, usize) {
        let lo = self.lo.component(axis);
        let iw = self.inv_width[axis];
        let max = self.dims[axis] - 1;
        let a = (((v - r) - lo) * iw).floor().max(0.0) as usize;
        let b = (((v + r) - lo) * iw).floor().max(0.0) as usize;
        (a.min(max), b.min(max))
    }

    /// Scan every cell overlapping the ball at one (possibly image)
    /// centre. The accept test is the plain Euclidean `dist_sq` the
    /// octree leaf scan uses — exactness contract of the module.
    fn scan_one_image(
        &self,
        center: Vec3,
        radius: f64,
        mut visit: impl FnMut(usize, f64),
        stats: &mut TraversalStats,
    ) {
        let r2 = radius * radius;
        let (x0, x1) = self.axis_range(0, center.x, radius);
        let (y0, y1) = self.axis_range(1, center.y, radius);
        let (z0, z1) = self.axis_range(2, center.z, radius);
        for iz in z0..=z1 {
            for iy in y0..=y1 {
                let row = (iz * self.dims[1] + iy) * self.dims[0];
                for ix in x0..=x1 {
                    let cell = row + ix;
                    stats.nodes_visited += 1;
                    let s = self.cell_offsets[cell] as usize;
                    let e = self.cell_offsets[cell + 1] as usize;
                    for k in s..e {
                        stats.p2p_interactions += 1;
                        let d2 = self.sorted_pos[k].dist_sq(center);
                        if d2 <= r2 {
                            visit(k, d2);
                        }
                    }
                }
            }
        }
    }
}

impl NeighborQuery for CellGrid {
    fn clamp_radius(&self, radius: f64) -> f64 {
        let mut r = radius;
        for axis in 0..3 {
            if self.periodicity.periodic[axis] {
                let span = self.periodicity.domain.extent().component(axis);
                r = r.min(0.5 * span * (1.0 - 1e-9));
            }
        }
        r
    }

    fn neighbors_within(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<u32>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        for_each_image_offset(&self.periodicity, center, clamped, |offset| {
            self.scan_one_image(center + offset, clamped, |k, _| out.push(self.entries[k]), stats);
        });
    }

    fn count_within(&self, center: Vec3, radius: f64, stats: &mut TraversalStats) -> usize {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        let mut count = 0usize;
        for_each_image_offset(&self.periodicity, center, clamped, |offset| {
            self.scan_one_image(center + offset, clamped, |_, _| count += 1, stats);
        });
        count
    }

    fn neighbors_with_dist(
        &self,
        center: Vec3,
        radius: f64,
        out: &mut Vec<(u32, f64)>,
        stats: &mut TraversalStats,
    ) {
        assert!(radius > 0.0 && radius.is_finite(), "bad search radius {radius}");
        let clamped = self.clamp_radius(radius);
        if clamped < radius {
            stats.radius_clamps += 1;
        }
        for_each_image_offset(&self.periodicity, center, clamped, |offset| {
            self.scan_one_image(
                center + offset,
                clamped,
                |k, d2| out.push((self.entries[k], d2)),
                stats,
            );
        });
    }
}

/// Enumerate the same image offsets as `Periodicity::ghost_offsets`
/// without allocating: identity plus every combination of the per-axis
/// face shifts. Identity comes first; combination order differs from the
/// Vec-building original, which is immaterial to counting and stats.
pub(crate) fn for_each_image_offset(per: &Periodicity, p: Vec3, r: f64, mut f: impl FnMut(Vec3)) {
    let mut shift = [0.0f64; 3];
    for (axis, shift_axis) in shift.iter_mut().enumerate() {
        if !per.periodic[axis] {
            continue;
        }
        let span = per.domain.extent().component(axis);
        if span <= 0.0 {
            continue;
        }
        let lo = per.domain.lo.component(axis);
        let hi = per.domain.hi.component(axis);
        let c = p.component(axis);
        if c - lo < r {
            *shift_axis = span;
        } else if hi - c < r {
            *shift_axis = -span;
        }
    }
    for mask in 0u32..8 {
        let mut offset = Vec3::ZERO;
        let mut skip = false;
        for (axis, &s) in shift.iter().enumerate() {
            if mask & (1 << axis) != 0 {
                if s == 0.0 {
                    skip = true; // this axis has no image: mask duplicates another
                    break;
                }
                *offset.component_mut(axis) = s;
            }
        }
        if !skip {
            f(offset);
        }
    }
}

/// Batch ball queries into one CSR structure: the shape of the per-step
/// neighbour phase (Fig. 4 phases B–D). Chunked map over fixed
/// `REDUCE_CHUNK` boundaries + ordered reduce, so the assembled lists and
/// merged stats are bit-identical for any thread count. Each row is
/// sorted ascending (the canonical summation order).
pub fn build_csr_lists<Q: NeighborQuery + ?Sized>(
    query: &Q,
    centers: &[Vec3],
    radii: &[f64],
) -> (NeighborLists, TraversalStats) {
    assert_eq!(centers.len(), radii.len());
    struct CsrChunk {
        flat: Vec<u32>,
        counts: Vec<u32>,
        stats: TraversalStats,
    }
    let chunks: Vec<CsrChunk> = centers
        .par_chunks(REDUCE_CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            let base = c * REDUCE_CHUNK;
            let mut stats = TraversalStats::default();
            let mut flat = Vec::with_capacity(chunk.len() * 64);
            let mut counts = Vec::with_capacity(chunk.len());
            for (off, &center) in chunk.iter().enumerate() {
                let before = flat.len();
                query.neighbors_within(center, radii[base + off], &mut flat, &mut stats);
                flat[before..].sort_unstable();
                counts.push((flat.len() - before) as u32);
            }
            CsrChunk { flat, counts, stats }
        })
        .collect();
    // Ordered reduce straight into the CSR arrays.
    // sph-lint: allow(raw-accumulation) — integer size bookkeeping;
    // usize addition is exact, no FP order to freeze.
    let total: usize = chunks.iter().map(|c| c.flat.len()).sum();
    assert!(total <= u32::MAX as usize, "neighbour count overflows u32 CSR offsets");
    let mut offsets = Vec::with_capacity(centers.len() + 1);
    offsets.push(0u32);
    let mut indices = Vec::with_capacity(total);
    let mut merged = TraversalStats::default();
    let mut running = 0u32;
    for chunk in chunks {
        merged.merge(&chunk.stats);
        for c in chunk.counts {
            // sph-lint: allow(raw-accumulation) — u32 CSR prefix sum;
            // integer addition is exact, no FP order to freeze.
            running += c;
            offsets.push(running);
        }
        indices.extend_from_slice(&chunk.flat);
    }
    (NeighborLists::from_csr(offsets, indices), merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sph_math::{Aabb, SplitMix64};

    fn random_points(n: usize, seed: u64) -> Vec<Vec3> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64())).collect()
    }

    fn brute_force(pts: &[Vec3], per: &Periodicity, c: Vec3, r: f64) -> Vec<u32> {
        (0..pts.len() as u32).filter(|&i| per.distance_sq(pts[i as usize], c) <= r * r).collect()
    }

    #[test]
    fn matches_brute_force_open_domain() {
        let pts = random_points(2000, 31);
        let per = Periodicity::open(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.1);
        let mut rng = SplitMix64::new(77);
        for _ in 0..50 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.3);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            grid.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "c={c:?} r={r}");
            assert!(stats.nodes_visited > 0);
        }
    }

    #[test]
    fn matches_brute_force_fully_periodic() {
        let pts = random_points(1200, 41);
        let per = Periodicity::fully_periodic(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.12);
        let mut rng = SplitMix64::new(88);
        for _ in 0..60 {
            // Bias toward the faces to stress the image scans.
            let pick = |rng: &mut SplitMix64| {
                if rng.next_f64() < 0.5 {
                    rng.uniform(0.0, 0.08)
                } else {
                    rng.uniform(0.08, 1.0)
                }
            };
            let c = Vec3::new(pick(&mut rng), pick(&mut rng), pick(&mut rng));
            let r = rng.uniform(0.02, 0.2);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            grid.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "c={c:?} r={r}");
        }
    }

    #[test]
    fn radius_spanning_many_cells_is_exact() {
        // Radii well past the cell edge force multi-ring scans.
        let pts = random_points(800, 5);
        let per = Periodicity::open(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.05);
        assert!(grid.dims().iter().all(|&d| d >= 4), "grid too coarse for the test");
        for r in [0.04, 0.11, 0.26, 0.7] {
            let c = Vec3::splat(0.4);
            let mut found = Vec::new();
            let mut stats = TraversalStats::default();
            grid.neighbors_within(c, r, &mut found, &mut stats);
            found.sort_unstable();
            assert_eq!(found, brute_force(&pts, &per, c, r), "r={r}");
        }
    }

    #[test]
    fn count_matches_list_and_is_clamp_aware() {
        let pts = random_points(600, 9);
        let per = Periodicity::periodic_z(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.1);
        let mut rng = SplitMix64::new(3);
        for _ in 0..30 {
            let c = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
            let r = rng.uniform(0.02, 0.7);
            let mut list_stats = TraversalStats::default();
            let mut out = Vec::new();
            grid.neighbors_within(c, r, &mut out, &mut list_stats);
            let mut count_stats = TraversalStats::default();
            let n = grid.count_within(c, r, &mut count_stats);
            assert_eq!(n, out.len(), "c={c:?} r={r}");
            assert_eq!(count_stats.radius_clamps, list_stats.radius_clamps);
        }
    }

    #[test]
    fn clamp_counter_fires_exactly_when_the_clamp_engages() {
        let pts = random_points(100, 17);
        let grid = CellGrid::build(&pts, Periodicity::periodic_z(Aabb::unit()), 0.2);
        let mut stats = TraversalStats::default();
        let mut out = Vec::new();
        // Below half the z span: no clamp event.
        grid.neighbors_within(Vec3::splat(0.5), 0.3, &mut out, &mut stats);
        assert_eq!(stats.radius_clamps, 0);
        // Past half the z span: exactly one event per query.
        out.clear();
        grid.neighbors_within(Vec3::splat(0.5), 0.6, &mut out, &mut stats);
        assert_eq!(stats.radius_clamps, 1);
        grid.count_within(Vec3::splat(0.5), 0.6, &mut stats);
        assert_eq!(stats.radius_clamps, 2);
        // Open domain: never clamps.
        let open = CellGrid::build(&pts, Periodicity::open(Aabb::unit()), 0.2);
        let mut ostats = TraversalStats::default();
        out.clear();
        open.neighbors_within(Vec3::splat(0.5), 9.0, &mut out, &mut ostats);
        assert_eq!(ostats.radius_clamps, 0);
        assert_eq!(out.len(), pts.len());
    }

    #[test]
    fn entries_within_a_cell_are_ascending() {
        let pts = random_points(3000, 23);
        let grid = CellGrid::build(&pts, Periodicity::open(Aabb::unit()), 0.15);
        let ncells = grid.dims[0] * grid.dims[1] * grid.dims[2];
        let mut seen = vec![false; pts.len()];
        for c in 0..ncells {
            let s = grid.cell_offsets[c] as usize;
            let e = grid.cell_offsets[c + 1] as usize;
            let cell = &grid.entries[s..e];
            assert!(cell.windows(2).all(|w| w[0] < w[1]), "cell {c} not ascending");
            for &i in cell {
                assert!(!seen[i as usize], "particle {i} indexed twice");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some particle was dropped");
    }

    #[test]
    fn cell_count_is_capped() {
        // A huge spread with a tiny cell size must not explode the grid.
        let pts = random_points(100, 2);
        let grid = CellGrid::build(&pts, Periodicity::open(Aabb::unit()), 1e-4);
        let ncells = grid.dims[0] * grid.dims[1] * grid.dims[2];
        assert!(ncells <= (MAX_CELLS_PER_PARTICLE * pts.len()).max(8));
        // Queries stay exact after the cap.
        let per = Periodicity::open(Aabb::unit());
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        grid.neighbors_within(Vec3::splat(0.5), 0.25, &mut out, &mut stats);
        out.sort_unstable();
        assert_eq!(out, brute_force(&pts, &per, Vec3::splat(0.5), 0.25));
    }

    #[test]
    fn degenerate_single_point_set() {
        let pts = vec![Vec3::splat(0.5)];
        let grid = CellGrid::build(&pts, Periodicity::open(Aabb::unit()), 0.1);
        let mut out = Vec::new();
        let mut stats = TraversalStats::default();
        grid.neighbors_within(Vec3::splat(0.5), 0.01, &mut out, &mut stats);
        assert_eq!(out, vec![0]);
        assert_eq!(grid.count_within(Vec3::splat(0.5), 0.01, &mut stats), 1);
    }

    #[test]
    fn batch_csr_matches_single_queries() {
        let pts = random_points(900, 21);
        let per = Periodicity::fully_periodic(Aabb::unit());
        let grid = CellGrid::build(&pts, per, 0.1);
        let centers: Vec<Vec3> = pts[..150].to_vec();
        let radii: Vec<f64> = (0..150).map(|i| 0.05 + 0.001 * i as f64).collect();
        let (lists, stats) = build_csr_lists(&grid, &centers, &radii);
        assert_eq!(lists.query_count(), 150);
        assert!(stats.p2p_interactions > 0);
        for (i, (&c, &r)) in centers.iter().zip(&radii).enumerate() {
            let mut expect = brute_force(&pts, &per, c, r);
            expect.sort_unstable();
            assert_eq!(lists.neighbors(i), expect, "query {i}");
        }
    }

    #[test]
    fn csr_roundtrip() {
        let lists = vec![vec![1, 2, 3], vec![], vec![7]];
        let nl = NeighborLists::from_lists(lists);
        assert_eq!(nl.query_count(), 3);
        assert_eq!(nl.neighbors(0), &[1, 2, 3]);
        assert_eq!(nl.neighbors(1), &[] as &[u32]);
        assert_eq!(nl.neighbors(2), &[7]);
        assert_eq!(nl.total_neighbors(), 4);
        assert!((nl.mean_count() - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn symmetrized_matches_naive_closure() {
        let mut rng = SplitMix64::new(6);
        // Random asymmetric gather lists over 40 particles, self included,
        // rows ascending (the production invariant).
        let n = 40usize;
        let rows: Vec<Vec<u32>> = (0..n as u32)
            .map(|k| {
                let mut row: Vec<u32> =
                    (0..n as u32).filter(|&j| j == k || rng.next_f64() < 0.15).collect();
                row.sort_unstable();
                row
            })
            .collect();
        let nl = NeighborLists::from_lists(rows.clone());
        let sym = nl.symmetrized();
        // Naive reference: push reverse edges, sort, dedup.
        let mut sets = rows.clone();
        for (k, row) in rows.iter().enumerate() {
            for &j in row {
                if j as usize != k {
                    sets[j as usize].push(k as u32);
                }
            }
        }
        for (k, s) in sets.iter_mut().enumerate() {
            s.sort_unstable();
            s.dedup();
            assert_eq!(sym.neighbors(k), s.as_slice(), "row {k}");
        }
    }
}
