//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot ergonomics the sources rely on: `lock()` /
//! `read()` / `write()` return guards directly (no `Result`). Poisoning is
//! transparently ignored — parking_lot has no poisoning, so a panicking
//! holder must not wedge every later access.

use std::fmt;

/// `parking_lot::Mutex`: non-poisoning mutex with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// `parking_lot::RwLock`: non-poisoning reader–writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot has no poisoning: the lock must still be usable.
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_default_and_debug() {
        let m: Mutex<[f64; 3]> = Mutex::default();
        assert_eq!(m.lock()[0], 0.0);
        let _ = format!("{m:?}");
    }
}
