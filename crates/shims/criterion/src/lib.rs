//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Supports the subset the `sph-bench` benches use: `Criterion`,
//! `benchmark_group` with `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter` /
//! `iter_with_setup`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Timing is honest but deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, and reports the median
//! per-iteration time on stdout. There is no statistical analysis, no
//! outlier detection, and no HTML report — the shim exists so that
//! `cargo bench` compiles and produces usable numbers offline, not to
//! replace criterion.
// Benchmark harness shim: timing is the whole point.
#![allow(clippy::disallowed_methods)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark measurement driver, mirroring `criterion::Bencher`.
pub struct Bencher {
    /// Nanoseconds per iteration for each sample, filled by `iter*`.
    samples: Vec<f64>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { samples: Vec::with_capacity(sample_size), sample_size, iters_per_sample: 1 }
    }

    /// Time `routine` repeatedly; the routine's output is black-boxed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one call, also used to size iterations per sample so
        // that very fast routines are not dominated by timer resolution.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        self.iters_per_sample = iters_for(once);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let dt = start.elapsed().as_secs_f64();
            self.samples.push(dt * 1e9 / self.iters_per_sample as f64);
        }
    }

    /// Time `routine` on a fresh value from `setup` each iteration; only
    /// the routine is timed.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }

    /// `iter_batched` with any batch size degrades to per-iteration setup
    /// in this shim.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        setup: S,
        routine: R,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, routine);
    }

    fn report(&self, id: &str) {
        let mut s = self.samples.clone();
        if s.is_empty() {
            println!("bench {id:<40} (no samples)");
            return;
        }
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        println!(
            "bench {id:<40} median {:>12} /iter  ({} samples x {} iters)",
            human_ns(median),
            s.len(),
            self.iters_per_sample
        );
    }
}

/// Batch sizing hints, accepted and ignored (setup runs per iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn iters_for(once: Duration) -> u64 {
    // Aim for ~2 ms per sample, capped to keep total bench time bounded.
    let ns = once.as_nanos().max(1) as u64;
    (2_000_000 / ns).clamp(1, 10_000)
}

fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Benchmark group, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&full);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&full);
        self
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let n = if self.default_sample_size == 0 { 10 } else { self.default_sample_size };
        let mut b = Bencher::new(n);
        f(&mut b);
        b.report(id);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// target against a shared `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn iter_with_setup_passes_fresh_input() {
        let mut b = Bencher::new(4);
        b.iter_with_setup(|| vec![1, 2, 3], |mut v| v.pop());
        assert_eq!(b.samples.len(), 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
