//! The [`Strategy`] trait and the combinators the workspace uses:
//! ranges, tuples, [`Just`], [`Map`] (`prop_map`), [`Union`]
//! (`prop_oneof!`), and [`BoxedStrategy`].

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`, mirroring
/// `proptest::strategy::Strategy` minus shrinking.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values, mirroring `prop_map`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Type-erase, mirroring `Strategy::boxed` (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies are used by shared reference inside combinators.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value, mirroring `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// Type-erased strategy, mirroring `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies; what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.uniform_usize(0, self.options.len());
        self.options[k].generate(rng)
    }
}

// --- Range strategies -------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.uniform_f64(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                (self.start as u64 + rng.uniform_u64(0, span)) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty inclusive range");
                if lo == 0 && hi == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo + rng.uniform_u64(0, hi - lo + 1)) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.uniform_u64(0, span) as i64) as $ty
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

// --- Tuple strategies --------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let f = (0.25..0.75_f64).generate(&mut r);
            assert!((0.25..0.75).contains(&f));
            let u = (3u8..=10).generate(&mut r);
            assert!((3..=10).contains(&u));
            let n = (1usize..33).generate(&mut r);
            assert!((1..33).contains(&n));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut r = rng();
        let s = (0.0..1.0_f64, 0.0..1.0_f64).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((0.0..2.0).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut r = rng();
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn just_clones() {
        let mut r = rng();
        assert_eq!(Just(vec![1, 2]).generate(&mut r), vec![1, 2]);
    }
}
