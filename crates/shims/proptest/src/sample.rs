//! `prop::sample`: collection-independent index sampling.

/// An index into a collection whose size is unknown at generation time,
/// mirroring `proptest::sample::Index`. Generate one with
/// `any::<prop::sample::Index>()`, then project it with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Index(pub(crate) u64);

impl Index {
    /// Project onto `[0, len)`. Panics if `len == 0`, as upstream does.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot sample an index into an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_projects_into_bounds() {
        for raw in [0u64, 1, 41, u64::MAX] {
            let ix = Index(raw);
            for len in [1usize, 2, 7, 1000] {
                assert!(ix.index(len) < len);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_collection_panics() {
        Index(3).index(0);
    }
}
