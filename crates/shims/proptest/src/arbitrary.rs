//! `any::<T>()`: whole-domain strategies for primitive types and
//! `prop::sample::Index`.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! arbitrary_prim {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary_value(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )+};
}

arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite f64s spanning many magnitudes (no NaN/inf: the workspace's
    /// properties are about physics, not IEEE edge cases).
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        let mantissa = rng.uniform_f64(-1.0, 1.0);
        let exp = rng.uniform_u64(0, 61) as i32 - 30;
        mantissa * 2f64.powi(exp)
    }
}

impl Arbitrary for Index {
    fn arbitrary_value(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_case("arb", 0);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_index_is_usable() {
        let mut rng = TestRng::for_case("arb", 1);
        let ix = any::<Index>().generate(&mut rng);
        assert!(ix.index(10) < 10);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::for_case("arb", 2);
        for _ in 0..1_000 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
