//! Test-runner plumbing: per-case deterministic RNG, configuration, and
//! the error type the `prop_assert*` macros return.

/// Suite-level configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trades a little coverage
        // for suite latency. Override with PROPTEST_CASES or with_cases().
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted as a
    /// failure.
    Reject(String),
    /// A `prop_assert*` failed — the property is falsified.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic RNG handed to strategies (SplitMix64 core).
///
/// Seeded from the test path and case index, so every case of every
/// property is reproducible without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `path`.
    pub fn for_case(path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 step: passes basic equidistribution needs for tests.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty f64 range {lo}..{hi}");
        let v = lo + self.next_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; clamp back inside.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }

    /// Uniform u64 in `[lo, hi)` (unbiased enough for test generation).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty integer range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.uniform_u64(lo as u64, hi as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_path_and_case() {
        let mut a = TestRng::for_case("crate::mod::test", 7);
        let mut b = TestRng::for_case("crate::mod::test", 7);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("crate::mod::test", 8);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut d = TestRng::for_case("crate::mod::other", 7);
        assert_ne!(b.next_u64(), d.next_u64());
    }

    #[test]
    fn uniform_f64_stays_in_range() {
        let mut rng = TestRng::for_case("t", 0);
        for _ in 0..10_000 {
            let v = rng.uniform_f64(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&v), "{v}");
        }
    }

    #[test]
    fn uniform_u64_covers_range() {
        let mut rng = TestRng::for_case("t", 1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.uniform_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn config_with_cases() {
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
