//! Collection strategies: `prop::collection::vec` and
//! `prop::collection::hash_set`.

// This shim mirrors the real proptest API, whose `hash_set` strategy is
// spelled in terms of std's HashSet; test-only randomness is exempt from
// the workspace determinism contract.
#![allow(clippy::disallowed_types)]

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Length specification for collection strategies, mirroring
/// `proptest::collection::SizeRange` (half-open `[lo, hi)`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.uniform_usize(self.lo, self.hi)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// `Vec<T>` strategy with element strategy `element` and length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet<T>` strategy: distinct elements, with the set size in `size`
/// where the element domain allows it.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = HashSet::with_capacity(target);
        // Duplicates don't grow the set; bound the retries so a small
        // element domain cannot loop forever.
        let mut attempts = 0usize;
        let max_attempts = 100 * (target + 1);
        while out.len() < target && attempts < max_attempts {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_length_range() {
        let s = vec(0.0..1.0_f64, 2..5);
        let mut rng = TestRng::for_case("collection", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()), "len {}", v.len());
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn vec_exact_length() {
        let s = vec(0u32..10, 7);
        let mut rng = TestRng::for_case("collection", 1);
        assert_eq!(s.generate(&mut rng).len(), 7);
    }

    #[test]
    fn hash_set_produces_distinct_elements_in_range() {
        let s = hash_set((0u64..32, 0u64..32, 0u64..32), 2..50);
        let mut rng = TestRng::for_case("collection", 2);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!((2..50).contains(&set.len()), "len {}", set.len());
        }
    }

    #[test]
    fn hash_set_caps_attempts_on_tiny_domains() {
        // Only 2 distinct values exist; asking for 10 must terminate.
        let s = hash_set(0u8..2, 10);
        let mut rng = TestRng::for_case("collection", 3);
        let set = s.generate(&mut rng);
        assert!(set.len() <= 2);
    }
}
