//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest API the workspace's test suites
//! use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), range/tuple/`Just`/`prop_oneof!`
//! strategies, `prop_map`, `prop::collection::{vec, hash_set}`,
//! `any::<T>()`, `prop::sample::Index`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **Deterministic**: the RNG for every test case is seeded from the
//!   test's module path, name, and case number, so a failure reproduces
//!   exactly on re-run and across machines. (Real proptest persists
//!   failing seeds in a regressions file; the shim does not need one.)
//! - **No shrinking**: a failing case reports the case number and
//!   message. Failing inputs tend to be readable because the generators
//!   here draw uniformly rather than biasing toward extremes.
//! - **Case count**: 64 by default (real proptest: 256), overridable per
//!   suite via `ProptestConfig::with_cases` or globally with the
//!   `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Mirror of `proptest::prelude`: glob-import to write property tests.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Real proptest re-exports the crate root as `prop` so tests can say
    /// `prop::collection::vec(...)` after a prelude glob import.
    pub use crate as prop;
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test_path, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property '{}' failed at case {}/{} (deterministic seed; \
                             rerun reproduces it): {}",
                            stringify!($name), __case, __cases, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt...)`: fail the current
/// case (without panicking through user code) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the case when `a != b`, showing both.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), __l, __r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// `prop_assert_ne!(a, b)`: fail the case when `a == b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), __l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// `prop_assume!(cond)`: silently discard the current case when `cond`
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// `prop_oneof![s1, s2, ...]`: choose uniformly among strategies that all
/// yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
