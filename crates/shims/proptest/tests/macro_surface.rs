//! Exercises the shim's macro surface exactly the way the workspace test
//! suites do: prelude glob import, config header, patterns, assume,
//! oneof, collections, and sample indices.

use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Tag {
    A,
    B,
    Scaled(u8),
}

fn tag() -> impl Strategy<Value = Tag> {
    prop_oneof![Just(Tag::A), Just(Tag::B), (3u8..=10).prop_map(Tag::Scaled)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tuples_and_maps(a in (0.0..1.0_f64, 0.0..1.0_f64).prop_map(|(x, y)| x + y)) {
        prop_assert!((0.0..2.0).contains(&a));
    }

    #[test]
    fn mut_pattern_and_vec(mut v in prop::collection::vec(-5.0..5.0_f64, 1..20)) {
        let first = v[0];
        v.reverse();
        prop_assert_eq!(*v.last().unwrap(), first);
    }

    #[test]
    fn tuple_pattern((x, y) in (0u32..10, 10u32..20)) {
        prop_assert!(x < y, "{x} vs {y}");
        prop_assert_ne!(x, y);
    }

    #[test]
    fn assume_discards(n in 0u64..100) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }

    #[test]
    fn oneof_and_inclusive_range(t in tag()) {
        if let Tag::Scaled(s) = t {
            prop_assert!((3..=10).contains(&s));
        }
    }

    #[test]
    fn sample_index(ix in any::<prop::sample::Index>(), len in 1usize..50) {
        prop_assert!(ix.index(len) < len);
    }

    #[test]
    fn hash_sets_are_distinct(cells in prop::collection::hash_set((0u64..32, 0u64..32), 2..20)) {
        prop_assert!(cells.len() >= 2);
    }
}

proptest! {
    // No config header: default case count path.
    #[test]
    fn default_config_path(x in -1e6..1e6_f64) {
        prop_assert!(x.is_finite());
    }
}

#[test]
fn failing_property_panics_with_case_info() {
    let result = std::panic::catch_unwind(|| {
        proptest! {
            // No #[test] here: the item lives inside a function body, where
            // the attribute would be inert and rustc warns about it.
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    });
    let err = result.expect_err("property must fail");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("always_fails"), "{msg}");
    assert!(msg.contains("x was"), "{msg}");
}
