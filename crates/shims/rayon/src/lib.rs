//! Offline *sequential* stand-in for the `rayon` crate.
//!
//! The workspace's build environment cannot reach crates.io, so this shim
//! provides the exact rayon API surface the sources use — `par_iter()` on
//! slices/Vecs and `par_sort_unstable()` on mutable slices — implemented
//! on top of plain `std` iterators. `par_iter()` returns the *standard*
//! slice iterator, so every downstream adaptor (`map`, `zip`, `enumerate`,
//! `collect`, …) is just the `std::iter` machinery and the call sites
//! compile unchanged.
//!
//! Swapping the real rayon back in (once a vendored copy is available) is a
//! one-line change in the root `Cargo.toml`; every call site was written
//! against real rayon semantics (no shared mutation inside the closures),
//! so the swap is purely a performance upgrade.

pub mod prelude {
    /// `par_iter()` for shared slices — sequential in this shim.
    ///
    /// Mirrors `rayon::iter::IntoParallelRefIterator`, but the associated
    /// iterator is `std::slice::Iter`, so the whole std adaptor ecosystem
    /// applies afterwards.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = core::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_iter_mut()` for exclusive slices — sequential in this shim.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = core::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// Sorting entry points from `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        fn as_mut_slice_shim(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_mut_slice_shim().sort_unstable();
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
            self.as_mut_slice_shim().sort_unstable_by_key(f);
        }

        fn par_sort_unstable_by<F: FnMut(&T, &T) -> core::cmp::Ordering>(&mut self, f: F) {
            self.as_mut_slice_shim().sort_unstable_by(f);
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn as_mut_slice_shim(&mut self) -> &mut [T] {
            self
        }
    }
}

/// Sequential `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "worker threads" — 1, truthfully, for the sequential shim.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![3, 1, 2];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
    }

    #[test]
    fn par_iter_zip_enumerate() {
        let a = [1, 2, 3];
        let b = [10, 20, 30];
        let s: Vec<(usize, i32)> =
            a.par_iter().zip(b.par_iter()).enumerate().map(|(i, (x, y))| (i, x + y)).collect();
        assert_eq!(s, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v = vec![(3u64, 0u32), (1, 1), (2, 2)];
        v.par_sort_unstable();
        assert_eq!(v, vec![(1, 1), (2, 2), (3, 0)]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
