//! Offline stand-in for the `rayon` crate with a **real** thread pool.
//!
//! The workspace's build environment cannot reach crates.io, so this shim
//! provides the rayon API subset the sources use — `par_iter()` /
//! `par_iter_mut()` on slices, `par_chunks()`, `par_sort_unstable{,_by,_by_key}()`,
//! `join`, `current_num_threads`, and `ThreadPoolBuilder` — executed on
//! worker threads (`std::thread::scope`) that self-schedule chunks of work
//! from a shared atomic cursor, a simple form of work stealing.
//!
//! # Thread count
//!
//! The worker count is, in order of precedence:
//!
//! 1. the last [`ThreadPoolBuilder::build_global`] override (0 resets it),
//! 2. the `SPH_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! Unlike real rayon there is no persistent pool — workers are scoped to
//! each parallel call — so `build_global` may be called repeatedly to
//! reconfigure the count mid-process. The determinism test suite relies on
//! this to compare runs at several thread counts inside one binary.
//!
//! # Determinism contract
//!
//! Work is split at **fixed chunk boundaries that depend only on the input
//! length**, never on the thread count ([`FIXED_CHUNK`] elements for the
//! iterator drivers, [`SORT_CHUNK`] for the parallel sort, whose merge takes
//! the left run on ties). Combined with the ordered reduction the call
//! sites perform over chunk results, every result is bit-identical for any
//! `SPH_THREADS` — which is what keeps conservation-drift SDC detection
//! meaningful when the drift is measured on one thread count and checked on
//! another.
//!
//! Swapping the real rayon back in remains a one-line change in the root
//! `Cargo.toml`; every call site is written against real rayon semantics
//! (`Fn + Sync` closures, no shared mutation).

use std::cmp::Ordering as CmpOrdering;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Upper bound on elements per task for the element-wise iterator drivers.
/// Driver task granularity adapts to the input size (it cannot affect
/// results — per-item outputs are reassembled in input order); the fixed
/// chunk boundaries of the determinism contract are the ones the call
/// sites choose via `par_chunks(size)` when they fold inside a chunk.
pub const FIXED_CHUNK: usize = 256;

/// Elements per leaf run of the parallel merge sort. Fixed — the merge
/// order (and thus the permutation of equal keys) depends only on the input
/// length, never on the thread count.
pub const SORT_CHUNK: usize = 4096;

/// `build_global` override; 0 = unset (fall back to env / hardware).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("SPH_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// Number of worker threads parallel calls will use, truthfully.
pub fn current_num_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => default_threads(),
        n => n,
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced by
/// the shim, which cannot fail to "build" scoped workers).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder` for the global pool. The shim keeps
/// no persistent threads, so — unlike real rayon — `build_global` may be
/// called again to change the count; `num_threads(0)` resets to the
/// `SPH_THREADS` / hardware default.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads (0 = `SPH_THREADS` / hardware default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Items per driver task: small enough to load-balance across the workers,
/// capped at [`FIXED_CHUNK`] to bound per-item overhead on large inputs.
fn task_granularity(n: usize) -> usize {
    (n / (current_num_threads() * 8)).clamp(1, FIXED_CHUNK)
}

/// Run `ntasks` independent tasks on the pool and return their results in
/// task order. Tasks are claimed from a shared cursor so a slow task does
/// not idle the other workers.
fn run_tasks<R, F>(ntasks: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = current_num_threads().min(ntasks).max(1);
    if workers == 1 {
        return (0..ntasks).map(task).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers - 1)
            .map(|_| {
                scope.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= ntasks {
                            break;
                        }
                        done.push((i, task(i)));
                    }
                    done
                })
            })
            .collect();
        // The calling thread is a worker too.
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= ntasks {
                break;
            }
            slots[i] = Some(task(i));
        }
        for h in handles {
            let done = h.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
            for (i, r) in done {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|s| s.expect("task not executed")).collect()
}

/// Hand disjoint `(base_index, chunk)` pieces of `v` to the pool.
fn run_chunks_mut<T, F>(v: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let workers = current_num_threads();
    if workers == 1 || v.len() <= chunk {
        for (c, piece) in v.chunks_mut(chunk).enumerate() {
            f(c * chunk, piece);
        }
        return;
    }
    let queue: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
        v.chunks_mut(chunk).enumerate().map(|(c, piece)| (c * chunk, piece)).rev().collect(),
    );
    let nworkers = {
        let q = queue.lock().unwrap();
        workers.min(q.len()).max(1)
    };
    std::thread::scope(|scope| {
        for _ in 0..nworkers {
            scope.spawn(|| loop {
                let item = queue.lock().unwrap().pop();
                let Some((base, piece)) = item else { break };
                f(base, piece);
            });
        }
    });
}

/// `rayon::join`: run both closures, potentially in parallel, and return
/// both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p));
        (ra, rb)
    })
}

// --------------------------------------------------------------------------
// Parallel iterators
// --------------------------------------------------------------------------

/// A lazy, indexed parallel pipeline: every stage knows its length and how
/// to produce the item at a given index, so the driver can execute fixed
/// chunks of indices on the pool and reassemble results in order.
pub trait ParallelIterator: Sized + Sync {
    type Item: Send;

    /// Number of items the pipeline yields.
    fn pi_len(&self) -> usize;

    /// Produce the item at `index`. Called concurrently from workers.
    fn pi_get(&self, index: usize) -> Self::Item;

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.pi_len();
        let per_task = task_granularity(n);
        run_tasks(n.div_ceil(per_task), |c| {
            let start = c * per_task;
            let end = n.min(start + per_task);
            for i in start..end {
                f(self.pi_get(i));
            }
        });
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(par_iter: P) -> Self {
        let n = par_iter.pi_len();
        let per_task = task_granularity(n);
        let chunks: Vec<Vec<T>> = run_tasks(n.div_ceil(per_task), |c| {
            let start = c * per_task;
            let end = n.min(start + per_task);
            (start..end).map(|i| par_iter.pi_get(i)).collect()
        });
        let mut out = Vec::with_capacity(n);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Shared-slice source (`par_iter()`).
pub struct Iter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelIterator for Iter<'data, T> {
    type Item = &'data T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_get(&self, index: usize) -> Self::Item {
        &self.slice[index]
    }
}

/// Sub-slice source (`par_chunks()`).
pub struct Chunks<'data, T> {
    slice: &'data [T],
    chunk_size: usize,
}

impl<'data, T: Sync> ParallelIterator for Chunks<'data, T> {
    type Item = &'data [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk_size)
    }

    fn pi_get(&self, index: usize) -> Self::Item {
        let start = index * self.chunk_size;
        let end = self.slice.len().min(start + self.chunk_size);
        &self.slice[start..end]
    }
}

/// `map` stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> R {
        (self.f)(self.base.pi_get(index))
    }
}

/// `enumerate` stage.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_get(&self, index: usize) -> Self::Item {
        (index, self.base.pi_get(index))
    }
}

/// `zip` stage (length = shorter side, like `std`/rayon).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn pi_len(&self) -> usize {
        self.a.pi_len().min(self.b.pi_len())
    }

    fn pi_get(&self, index: usize) -> Self::Item {
        (self.a.pi_get(index), self.b.pi_get(index))
    }
}

/// Exclusive-slice source (`par_iter_mut()`). Reduced API: `for_each`,
/// optionally after `enumerate` — the mutable counterpart of a gather
/// loop. Chunks of [`FIXED_CHUNK`] elements run on the pool.
pub struct IterMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> IterMut<'data, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        run_chunks_mut(self.slice, FIXED_CHUNK, |_base, chunk| {
            for item in chunk {
                f(item);
            }
        });
    }

    pub fn enumerate(self) -> EnumerateMut<'data, T> {
        EnumerateMut { slice: self.slice }
    }
}

/// `par_iter_mut().enumerate()`.
pub struct EnumerateMut<'data, T> {
    slice: &'data mut [T],
}

impl<T: Send> EnumerateMut<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync,
    {
        run_chunks_mut(self.slice, FIXED_CHUNK, |base, chunk| {
            for (off, item) in chunk.iter_mut().enumerate() {
                f((base + off, item));
            }
        });
    }
}

// --------------------------------------------------------------------------
// Parallel sort
// --------------------------------------------------------------------------

/// Raw destination pointer that may cross thread boundaries; every task
/// writes a disjoint index range, which is what makes the sharing sound.
struct SendPtr<T>(*mut T);

// SAFETY: the pointer is only ever dereferenced inside `par_sort_impl`,
// where each spawned task writes the disjoint half-open index range it was
// handed — no two tasks alias, and the allocation outlives the scope that
// joins them. Sending the address itself between threads is then sound.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: sharing `&SendPtr<T>` only exposes the raw address (`get`);
// all writes through it target per-task disjoint ranges (see above), so
// concurrent access cannot produce a data race.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer itself.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Debug-build sanitizer backing the `SendPtr` SAFETY contract: before
/// writing through the shared pointer, every task registers the half-open
/// index range it is about to touch, and any overlap with a previously
/// claimed range panics immediately instead of silently racing. Release
/// builds compile this to a zero-sized no-op.
struct DisjointClaims {
    #[cfg(debug_assertions)]
    claimed: Mutex<Vec<(usize, usize)>>,
}

impl DisjointClaims {
    fn new() -> Self {
        DisjointClaims {
            #[cfg(debug_assertions)]
            claimed: Mutex::new(Vec::new()),
        }
    }

    /// Claim `[start, end)` for exclusive writes. Panics (debug builds
    /// only) when the range intersects one already claimed this level.
    #[allow(unused_variables)]
    fn claim(&self, start: usize, end: usize) {
        #[cfg(debug_assertions)]
        {
            let mut claimed = self.claimed.lock().unwrap_or_else(|e| e.into_inner());
            for &(s, e) in claimed.iter() {
                assert!(
                    end <= s || e <= start,
                    "SendPtr range overlap: task claims [{start}, {end}) but [{s}, {e}) is \
                     already claimed — the chunk split is not disjoint"
                );
            }
            claimed.push((start, end));
        }
    }

    /// Forget all claims — the next merge level reuses the same buffers.
    fn reset(&self) {
        #[cfg(debug_assertions)]
        self.claimed.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Merge the sorted runs `src[..mid]` and `src[mid..]` into `dst`, taking
/// the left run on ties (stable ⇒ deterministic permutation).
///
/// # Safety
///
/// `dst` must be valid for `src.len()` writes and disjoint from `src`.
/// Elements are moved bitwise; the caller must treat `src` as moved-from
/// (only sound for `!needs_drop` types, which the caller checks).
unsafe fn merge_runs<T, F>(src: &[T], mid: usize, dst: *mut T, cmp: &F)
where
    F: Fn(&T, &T) -> CmpOrdering,
{
    let (mut i, mut j, mut k) = (0usize, mid, 0usize);
    while i < mid && j < src.len() {
        let take_left = cmp(&src[i], &src[j]) != CmpOrdering::Greater;
        let from = if take_left { &src[i] } else { &src[j] };
        std::ptr::write(dst.add(k), std::ptr::read(from));
        i += usize::from(take_left);
        j += usize::from(!take_left);
        k += 1;
    }
    while i < mid {
        std::ptr::write(dst.add(k), std::ptr::read(&src[i]));
        i += 1;
        k += 1;
    }
    while j < src.len() {
        std::ptr::write(dst.add(k), std::ptr::read(&src[j]));
        j += 1;
        k += 1;
    }
}

/// Parallel merge sort: sort [`SORT_CHUNK`]-sized runs on the pool, then
/// merge pairs of runs level by level, ping-ponging between `v` and one
/// scratch buffer. Falls back to `slice::sort_unstable_by` for small
/// inputs, one thread, or element types with drop glue (the bitwise-move
/// merge would double-drop them).
fn par_merge_sort_by<T, F>(v: &mut [T], cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    let n = v.len();
    // The algorithm choice must NOT depend on the thread count: the chunked
    // merge and a monolithic sort_unstable permute equal keys differently,
    // and the determinism contract promises one permutation for any
    // `SPH_THREADS`. (With one worker the chunked path simply runs its
    // tasks sequentially.)
    if std::mem::needs_drop::<T>() || n <= SORT_CHUNK {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }

    run_chunks_mut(v, SORT_CHUNK, |_base, run| run.sort_unstable_by(|a, b| cmp(a, b)));

    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<T> needs no initialisation; length ≤ capacity.
    unsafe { scratch.set_len(n) };
    let scratch_ptr = scratch.as_mut_ptr() as *mut T;
    let v_ptr = v.as_mut_ptr();

    let mut width = SORT_CHUNK;
    let mut data_in_v = true;
    let claims = DisjointClaims::new();
    while width < n {
        let (src_root, dst_root) =
            if data_in_v { (v_ptr, scratch_ptr) } else { (scratch_ptr, v_ptr) };
        let src_token = SendPtr(src_root);
        let dst_token = SendPtr(dst_root);
        let npairs = n.div_ceil(2 * width);
        run_tasks(npairs, |p| {
            let start = p * 2 * width;
            let end = n.min(start + 2 * width);
            let mid = width.min(end - start);
            // Debug builds verify the SAFETY contract the comment below
            // asserts: no two tasks may write overlapping dst ranges.
            claims.claim(start, end);
            // SAFETY: each task owns the disjoint range [start, end) of both
            // buffers; src holds initialised (sorted-run) elements from the
            // previous level; dst is valid for writes; T has no drop glue.
            unsafe {
                let src =
                    std::slice::from_raw_parts(src_token.get().add(start) as *const T, end - start);
                merge_runs(src, mid, dst_token.get().add(start), &cmp);
            }
        });
        claims.reset();
        data_in_v = !data_in_v;
        width *= 2;
    }
    if !data_in_v {
        // SAFETY: scratch holds all n initialised elements; buffers disjoint.
        unsafe { std::ptr::copy_nonoverlapping(scratch_ptr as *const T, v_ptr, n) };
    }
    // `MaybeUninit` never drops its payload, so scratch cannot double-free
    // the elements that were moved back into `v`.
}

// --------------------------------------------------------------------------
// Prelude traits
// --------------------------------------------------------------------------

pub mod prelude {
    use super::{Chunks, Iter, IterMut};
    pub use super::{FromParallelIterator, ParallelIterator};

    /// `par_iter()` for shared slices.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: ParallelIterator<Item = Self::Item>;
        type Item: Send + 'data;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            Iter { slice: self }
        }
    }

    /// `par_iter_mut()` for exclusive slices.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            IterMut { slice: self }
        }
    }

    /// Shared-slice views from `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        fn as_parallel_slice(&self) -> &[T];

        /// Parallel iterator over `chunk_size`-sized sub-slices (the last
        /// may be shorter). Chunk boundaries depend only on the slice
        /// length — the building block of the fixed-chunk determinism
        /// contract at the SPH call sites.
        fn par_chunks(&self, chunk_size: usize) -> Chunks<'_, T> {
            assert!(chunk_size > 0, "chunk_size must be positive");
            Chunks { slice: self.as_parallel_slice(), chunk_size }
        }
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn as_parallel_slice(&self) -> &[T] {
            self
        }
    }

    /// Sorting entry points from `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        fn as_parallel_slice_mut(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            super::par_merge_sort_by(self.as_parallel_slice_mut(), T::cmp);
        }

        fn par_sort_unstable_by<F>(&mut self, cmp: F)
        where
            F: Fn(&T, &T) -> core::cmp::Ordering + Sync,
        {
            super::par_merge_sort_by(self.as_parallel_slice_mut(), cmp);
        }

        fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
        where
            K: Ord,
            F: Fn(&T) -> K + Sync,
        {
            super::par_merge_sort_by(self.as_parallel_slice_mut(), |a, b| key(a).cmp(&key(b)));
        }
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn as_parallel_slice_mut(&mut self) -> &mut [T] {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Tests that set the global thread override must not interleave.
    static POOL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let v: Vec<i64> = (0..10_000).collect();
        let doubled: Vec<i64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_zip_enumerate() {
        let a = [1, 2, 3];
        let b = [10, 20, 30];
        let s: Vec<(usize, i32)> =
            a.par_iter().zip(b.par_iter()).enumerate().map(|(i, (x, y))| (i, x + y)).collect();
        assert_eq!(s, vec![(0, 11), (1, 22), (2, 33)]);
    }

    #[test]
    fn par_chunks_cover_slice_in_order() {
        let v: Vec<u32> = (0..1000).collect();
        let sums: Vec<u32> = v.par_chunks(64).map(|c| c.iter().sum::<u32>()).collect();
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
        assert_eq!(sums.iter().sum::<u32>(), (0..1000).sum::<u32>());
        // First chunk is exactly the first 64 elements.
        assert_eq!(sums[0], (0..64).sum::<u32>());
    }

    #[test]
    fn par_iter_mut_for_each_touches_everything() {
        let mut v = vec![1i32; 5000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as i32);
        assert_eq!(v[4999], 4999);
    }

    #[test]
    fn for_each_runs_once_per_item() {
        let count = AtomicUsize::new(0);
        let v = vec![0u8; 3000];
        v.par_iter().for_each(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3000);
    }

    #[test]
    fn par_sort_unstable_sorts_large_input() {
        // Big enough to exercise the parallel merge path (> SORT_CHUNK).
        let mut v: Vec<(u64, u32)> =
            (0..20_000u64).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 20, i as u32)).collect();
        let mut reference = v.clone();
        reference.sort_unstable();
        v.par_sort_unstable();
        assert_eq!(v, reference);
    }

    #[test]
    fn par_sort_is_thread_count_invariant() {
        // Duplicate keys on purpose: the fixed chunking + left-on-ties merge
        // must give one permutation regardless of worker count.
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let base: Vec<(u64, u32)> = (0..30_000u64).map(|i| (i % 97, i as u32)).collect();
        let mut results = Vec::new();
        for threads in [1usize, 2, 5] {
            super::ThreadPoolBuilder::new().num_threads(threads).build_global().unwrap();
            let mut v = base.clone();
            v.par_sort_unstable_by_key(|&(k, _)| k);
            results.push(v);
        }
        super::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn par_sort_by_custom_comparator() {
        let mut v: Vec<u64> = (0..10_000).map(|i| (i * 7919) % 10_007).collect();
        let mut reference = v.clone();
        reference.sort_unstable_by(|a, b| b.cmp(a));
        v.par_sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v, reference);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SendPtr range overlap")]
    fn overlapping_chunk_split_panics() {
        // Simulate a buggy merge-level split: stride `width` but task size
        // `2 * width`, so consecutive tasks overlap by half. The sanitizer
        // must catch the first overlapping claim.
        let claims = super::DisjointClaims::new();
        let (n, width) = (4 * super::SORT_CHUNK, super::SORT_CHUNK);
        for p in 0..3 {
            let start = p * width; // BUG: should stride by 2 * width
            let end = n.min(start + 2 * width);
            claims.claim(start, end);
        }
    }

    #[test]
    fn disjoint_claims_pass_and_reset_reopens_ranges() {
        // The correct level split — disjoint pair ranges — must not trip
        // the sanitizer, and reset() must allow the next level to claim
        // the same indices again.
        let claims = super::DisjointClaims::new();
        let (n, width) = (5 * super::SORT_CHUNK, super::SORT_CHUNK);
        for p in 0..n.div_ceil(2 * width) {
            let start = p * 2 * width;
            claims.claim(start, n.min(start + 2 * width));
        }
        claims.reset();
        claims.claim(0, n); // whole buffer, legal again after reset
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn thread_pool_builder_overrides_and_resets() {
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::ThreadPoolBuilder::new().num_threads(3).build_global().unwrap();
        assert_eq!(super::current_num_threads(), 3);
        super::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn parallelism_actually_happens() {
        // With ≥ 2 workers, two long-running chunks must overlap in time:
        // both workers check in before either is released.
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::ThreadPoolBuilder::new().num_threads(2).build_global().unwrap();
        let arrivals = AtomicUsize::new(0);
        let v = vec![0u8; 2 * super::FIXED_CHUNK]; // exactly two chunks
        let overlapped = AtomicUsize::new(0);
        v.par_chunks(super::FIXED_CHUNK).for_each(|_| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            // Wait (bounded) for the other chunk's worker.
            for spin in 0..10_000_000u64 {
                if arrivals.load(Ordering::SeqCst) == 2 {
                    overlapped.fetch_add(1, Ordering::SeqCst);
                    break;
                }
                if spin % 1000 == 0 {
                    std::thread::yield_now();
                }
                std::hint::spin_loop();
            }
        });
        super::ThreadPoolBuilder::new().num_threads(0).build_global().unwrap();
        assert_eq!(overlapped.load(Ordering::SeqCst), 2, "chunks never ran concurrently");
    }
}
