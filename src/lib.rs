//! Umbrella crate for the SPH-EXA reproduction.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! integration tests (and downstream users who just want "the mini-app")
//! need a single dependency:
//!
//! ```
//! use sph_exa_repro::math::Vec3;
//! let v = Vec3::new(1.0, 2.0, 3.0);
//! assert_eq!(v.norm_sq(), 14.0);
//! ```

pub use sph_cluster as cluster;
pub use sph_core as core;
pub use sph_domain as domain;
pub use sph_exa as exa;
pub use sph_ft as ft;
pub use sph_kernels as kernels;
pub use sph_math as math;
pub use sph_parents as parents;
pub use sph_profiler as profiler;
pub use sph_scenarios as scenarios;
pub use sph_tree as tree;
