//! Run the same square-patch step with all three parent-code
//! configurations and compare — the co-design comparison of §5 in
//! miniature: identical physics problem, different Tables 1/3 choices,
//! different work profiles.
//!
//! ```text
//! cargo run --release --example parent_comparison
//! ```
// Wall-clock timing IS the measurement here; never feeds a trajectory.
#![allow(clippy::disallowed_methods)]

use sph_exa_repro::cluster::{model_step, piz_daint, StepModelConfig, StepWorkload};
use sph_exa_repro::parents::{changa, miniapp, sphflow, sphynx, Scenario};
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

fn main() {
    let nx = 18;
    println!(
        "square patch {nx}³ = {} particles; one time-step per parent configuration\n",
        nx * nx * nx
    );
    println!(
        "{:18} {:>9} {:>12} {:>10} {:>9} {:>12}",
        "code", "dt", "interactions", "h-iters", "wall(s)", "96-core model"
    );
    for setup in [sphynx(), changa(), sphflow(), miniapp()] {
        let cfg = SquarePatchConfig { nx, nz: nx, gamma: setup.sph.gamma, ..Default::default() };
        let sys = square_patch(&cfg);
        let mut sim = sph_exa_repro::exa::SimulationBuilder::new(sys)
            .config(setup.sph)
            .build()
            .expect("valid");
        let start = std::time::Instant::now();
        let report = sim.step().expect("stable step");
        let wall = start.elapsed().as_secs_f64();

        // Model the same step at 96 cores of Piz Daint with this code's
        // calibrated cost model.
        let work = sim.per_particle_work().to_vec();
        let zeros = vec![0.0; sim.sys.len()];
        let workload = StepWorkload {
            positions: &sim.sys.x,
            sph_work: &work,
            gravity_work: &zeros,
            interaction_radius: 2.0 * sim.sys.max_h(),
            periodicity: sim.sys.periodicity,
            bounds: sim.sys.bounds(),
        };
        let model = StepModelConfig {
            partitioner: setup.partitioner,
            balancing: setup.balancing,
            machine: piz_daint(),
            cost: setup.cost_for(Scenario::SquarePatch),
        };
        let timing = model_step(&workload, 96, &model, Some(&work));
        println!(
            "{:18} {:>9.2e} {:>12} {:>10} {:>9.3} {:>10.3}s",
            setup.name,
            report.dt,
            report.stats.sph_interactions,
            report.stats.h_iterations,
            wall,
            timing.total()
        );
    }
    println!(
        "\nnote the paper's ordering at fixed cores (Figs. 1–3): ChaNGa ≫ SPHYNX > SPH-flow \
         on this CFD test, with the mini-app target leaner than all three."
    );
}
