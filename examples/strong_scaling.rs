//! A self-contained strong-scaling experiment (the Figs. 1–3 machinery on
//! a problem small enough for a laptop).
//!
//! ```text
//! cargo run --release --example strong_scaling
//! ```
//!
//! Evolves one square-patch simulation and models every step at each core
//! count on both paper platforms, printing the scaling table with the
//! stall the paper ties to particles/core.

use sph_exa_repro::cluster::scaling::render_scaling_table;
use sph_exa_repro::cluster::{
    marenostrum4, piz_daint, scaling_experiment, ScalingConfig, StepModelConfig,
};
use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::parents::{sphflow, Scenario};
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

fn main() {
    let setup = sphflow();
    let nx = 20;
    let cfg = SquarePatchConfig { nx, nz: nx, gamma: setup.sph.gamma, ..Default::default() };
    println!(
        "strong scaling of the square patch, {} particles, SPH-flow configuration",
        nx * nx * nx
    );

    for machine in [piz_daint(), marenostrum4()] {
        let sys = square_patch(&cfg);
        let mut sim = SimulationBuilder::new(sys).config(setup.sph).build().expect("valid");
        let model = StepModelConfig {
            partitioner: setup.partitioner,
            balancing: setup.balancing,
            machine,
            cost: setup.cost_for(Scenario::SquarePatch),
        };
        let sweep = ScalingConfig { core_counts: vec![12, 24, 48, 96, 192, 384], steps: 3 };
        let (rows, _) =
            scaling_experiment(&mut sim, &model, &sweep).expect("physics evolution stayed stable");
        println!("\n{}", render_scaling_table(machine.name, &rows));
    }
    println!(
        "the efficiency column collapses once particles/core drops toward ~10³–10⁴ — \
         the stall rule of §5.2 (\"scaling stalls when there are not enough particles/core\")."
    );
}
