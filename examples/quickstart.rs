//! Quickstart: build a small gas ball, run ten SPH steps with the
//! mini-app driver, and watch the conserved quantities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::core::ParticleSystem;
use sph_exa_repro::exa::Simulation;
use sph_exa_repro::math::{Aabb, Periodicity, SplitMix64, Vec3};

fn main() {
    // 1. Make particles: a warm uniform ball of unit mass.
    let n = 4_000;
    let mut rng = SplitMix64::new(7);
    let mut positions = Vec::with_capacity(n);
    while positions.len() < n {
        let p = Vec3::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        if p.norm() <= 1.0 {
            positions.push(p);
        }
    }
    let count = positions.len();
    let system = ParticleSystem::new(
        positions,
        vec![Vec3::ZERO; count],         // at rest
        vec![1.0 / count as f64; count], // equal masses
        vec![0.5; count],                // specific internal energy
        0.2,                             // initial smoothing length guess
        Periodicity::open(Aabb::cube(Vec3::ZERO, 2.0)),
    );

    // 2. Configure the mini-app (defaults = M4 spline, kernel-derivative
    //    gradients, global time-stepping — one cell of Table 2).
    let config = SphConfig { target_neighbors: 60, ..Default::default() };
    let mut sim = Simulation::new(system, config).expect("valid configuration");

    // 3. Run and report.
    let initial = sim.conservation();
    println!("step      dt        time    kinetic   internal   total-E   drift");
    for _ in 0..10 {
        let report = sim.step().expect("stable step");
        let c = sim.conservation();
        println!(
            "{:4}  {:9.2e}  {:7.4}  {:8.5}  {:9.5}  {:8.5}  {:8.1e}",
            report.step,
            report.dt,
            report.time,
            c.kinetic_energy,
            c.internal_energy,
            c.total_energy(),
            c.energy_drift(&initial)
        );
    }
    let final_c = sim.conservation();
    println!(
        "\nthe hot ball expands: kinetic energy grew from 0 to {:.4}, internal fell, \
         total energy drifted {:.2e} (relative) over 10 steps.",
        final_c.kinetic_energy,
        final_c.energy_drift(&initial)
    );
    println!("{}", sim.timers().report());
}
