//! The Evrard collapse (§5.1, Table 5): the astrophysics validation test
//! with self-gravity, run on the SPHYNX configuration.
//!
//! ```text
//! cargo run --release --example evrard_collapse
//! cargo run --release --example evrard_collapse -- 8000   # particle target
//! ```
//!
//! Tracks the energy ledger of the collapse: the cold cloud (u₀ = 0.05,
//! |W₀| = 2/3 ≫ U₀) falls in, converting gravitational energy into kinetic
//! energy and then — through the central shock — into heat, while the
//! total stays (approximately) conserved.

use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::parents::sphynx;
use sph_exa_repro::scenarios::evrard::evrard_gravitational_energy;
use sph_exa_repro::scenarios::{evrard_collapse, EvrardConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(5_000);
    let setup = sphynx();
    let cfg = EvrardConfig { n_target: n, ..Default::default() };
    let sys = evrard_collapse(&cfg);
    println!(
        "Evrard collapse: {} particles, R = M = G = 1, u0 = {}, γ = 5/3, code = {}",
        sys.len(),
        cfg.u0,
        setup.name
    );
    println!(
        "analytic initial gravitational energy: W0 = −2GM²/3R = {:.4}",
        evrard_gravitational_energy(cfg.mass, cfg.radius, 1.0)
    );

    let mut sim = SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(setup.gravity.expect("SPHYNX has gravity"))
        .build()
        .expect("valid setup");

    // First derivative evaluation populates the measured potentials.
    sim.step().expect("stable step");
    let c0 = sim.conservation();
    println!(
        "measured  initial gravitational energy: W  = {:.4} (tree, quadrupole, θ = {})\n",
        c0.gravitational_energy,
        setup.gravity.unwrap().theta
    );

    println!("step    time     kinetic   internal    gravit.   total     central ρ");
    for step in 1..=20 {
        sim.step().expect("stable step");
        if step % 2 == 0 {
            let c = sim.conservation();
            let rho_c = central_density(&sim);
            println!(
                "{step:4}  {:7.4}  {:8.5}  {:9.5}  {:9.5}  {:8.5}  {:9.3}",
                sim.sys.time,
                c.kinetic_energy,
                c.internal_energy,
                c.gravitational_energy,
                c.total_energy(),
                rho_c
            );
        }
    }
    let c1 = sim.conservation();
    println!("\nthe collapse so far:");
    println!("  kinetic energy grew  {:.4} → {:.4}", c0.kinetic_energy, c1.kinetic_energy);
    println!(
        "  potential deepened   {:.4} → {:.4}",
        c0.gravitational_energy, c1.gravitational_energy
    );
    println!("  total energy drift   {:.2e}", c1.energy_drift(&c0));
}

fn central_density(sim: &sph_exa_repro::exa::Simulation) -> f64 {
    let sys = &sim.sys;
    let core: Vec<f64> =
        (0..sys.len()).filter(|&i| sys.x[i].norm() < 0.1).map(|i| sys.rho[i]).collect();
    if core.is_empty() {
        f64::NAN
    } else {
        core.iter().sum::<f64>() / core.len() as f64
    }
}
