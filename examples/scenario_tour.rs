//! Tour of the scenario engine: list the registry, then run one
//! workload end-to-end through both step drivers and validate it.
//!
//! ```text
//! cargo run --release --example scenario_tour                # default: sod
//! cargo run --release --example scenario_tour -- gresho      # any registry name
//! cargo run --release --example scenario_tour -- sedov 0.5   # + resolution scale
//! ```

use sph_exa_repro::core::diagnostics::state_fingerprint;
use sph_exa_repro::scenarios::{
    run_scenario, DriverKind, Resolution, RunOptions, ScenarioRegistry,
};

fn main() {
    let registry = ScenarioRegistry::builtin();
    println!("registered scenarios:\n{}", registry.catalogue_markdown());

    let name = std::env::args().nth(1).unwrap_or_else(|| "sod".to_string());
    // Tolerances are registered at scale 1.0; smaller scales run faster
    // but may (honestly) miss them.
    let scale: f64 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(1.0);
    let sc = registry.get(&name).unwrap_or_else(|| {
        eprintln!("unknown scenario {name:?}; pick one of {:?}", registry.names());
        std::process::exit(2);
    });

    let opts = RunOptions {
        resolution: Resolution { scale },
        driver: DriverKind::Single,
        ..Default::default()
    };
    println!("running `{}` (scale {scale}) on the single-rank driver…", sc.name());
    let run = run_scenario(sc, &opts).expect("scenario runs");
    let report = sc.validate(&run);
    println!("{}", report.to_json());
    println!(
        "→ {} after {} steps to t = {:.4}: {}",
        report.scenario,
        report.steps,
        report.end_time,
        if report.passed { "PASS" } else { "FAIL" }
    );

    // The same workload through the multi-rank driver is bit-identical.
    println!("re-running on the 2-rank distributed driver…");
    let dist =
        run_scenario(sc, &RunOptions { driver: DriverKind::Distributed { nranks: 2 }, ..opts })
            .expect("distributed run");
    assert_eq!(
        state_fingerprint(&run.sys),
        state_fingerprint(&dist.sys),
        "drivers must agree bit-for-bit"
    );
    println!("single-rank and 2-rank states are bit-identical ✓");
}
