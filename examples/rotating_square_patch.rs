//! The rotating square patch (§5.1, Table 5): the CFD validation test all
//! three parent codes ran.
//!
//! ```text
//! cargo run --release --example rotating_square_patch
//! cargo run --release --example rotating_square_patch -- 40   # nx = nz = 40
//! ```
//!
//! Runs 20 time-steps (the paper's simulation length) of the Colagrossi
//! test on the SPH-flow configuration and reports the diagnostics the test
//! is used for: angular-momentum conservation, the negative-pressure
//! fraction driving the tensile instability, and density scatter.

use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::math::Vec3;
use sph_exa_repro::parents::sphflow;
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

fn main() {
    let nx: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(24);
    let setup = sphflow();
    let cfg = SquarePatchConfig { nx, nz: nx, gamma: setup.sph.gamma, ..Default::default() };
    let sys = square_patch(&cfg);
    println!(
        "rotating square patch: {}×{}×{} = {} particles, ω = {} rad/s, 20 steps, code = {}",
        cfg.nx,
        cfg.nx,
        cfg.nz,
        sys.len(),
        cfg.omega,
        setup.name
    );

    let mut sim = SimulationBuilder::new(sys).config(setup.sph).build().expect("valid setup");
    let c0 = sim.conservation();
    let axis = Vec3::new(cfg.side / 2.0, cfg.side / 2.0, 0.0);
    let lz0 = angular_momentum_z(&sim, axis);

    // The ideal-gas setup carries a uniform background pressure (it adds
    // no force); the tensile-instability indicator is pressure *below*
    // that background, i.e. the physically negative region of the
    // Colagrossi solution.
    let p_back = cfg.background_pressure * cfg.rho0 * cfg.omega * cfg.omega * cfg.side * cfg.side;
    println!("\nstep     dt       time     Lz/Lz0    P<Pback    max|ρ-ρ0|/ρ0");
    for step in 1..=20 {
        sim.step().expect("stable step");
        let neg_p = sim.sys.p.iter().filter(|&&p| p < p_back).count() as f64 / sim.sys.len() as f64;
        let max_drho =
            sim.sys.rho.iter().map(|&r| (r - cfg.rho0).abs() / cfg.rho0).fold(0.0, f64::max);
        let lz = angular_momentum_z(&sim, axis);
        if step % 2 == 0 {
            println!(
                "{step:4}  {:8.2e}  {:7.4}  {:8.5}  {:9.4}  {:12.4}",
                sim.dt_report(),
                sim.sys.time,
                lz / lz0,
                neg_p,
                max_drho
            );
        }
    }

    let c1 = sim.conservation();
    println!("\nconservation over 20 steps:");
    println!("  energy drift    {:.3e}", c1.energy_drift(&c0));
    println!("  angular momentum ratio {:.6}", angular_momentum_z(&sim, axis) / lz0);
    println!(
        "  the free surface survives: {} of {} particles stayed within 1.5 side lengths",
        sim.sys.x.iter().filter(|p| (p.x - 0.5).abs() < 1.5 && (p.y - 0.5).abs() < 1.5).count(),
        sim.sys.len()
    );
}

fn angular_momentum_z(sim: &sph_exa_repro::exa::Simulation, axis: Vec3) -> f64 {
    let sys = &sim.sys;
    (0..sys.len())
        .map(|i| {
            let d = sys.x[i] - axis;
            sys.m[i] * (d.x * sys.v[i].y - d.y * sys.v[i].x)
        })
        .sum()
}

/// Tiny helper trait so the example can show the last dt.
trait DtReport {
    fn dt_report(&self) -> f64;
}

impl DtReport for sph_exa_repro::exa::Simulation {
    fn dt_report(&self) -> f64 {
        // The simulation exposes time and step count; derive a mean dt.
        if self.sys.step_count > 0 {
            self.sys.time / self.sys.step_count as f64
        } else {
            0.0
        }
    }
}
