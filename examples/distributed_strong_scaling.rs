//! Multi-rank distributed stepping, end to end: run the same square patch
//! on 1, 2 and 4 in-process ranks, verify the full-state fingerprints are
//! bit-identical, then feed the *measured* decomposition, halo volumes
//! and per-rank timings into the cluster step model — the Figs. 1–3
//! machinery calibrated by a real multi-rank execution instead of
//! estimates.
//!
//! ```text
//! cargo run --release --example distributed_strong_scaling
//! ```

use sph_exa_repro::cluster::{
    calibrate_machine, model_measured_step, piz_daint, LoadBalancing, MeasuredStep, Partitioner,
    StepModelConfig,
};
use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::core::diagnostics::state_fingerprint as fingerprint;
use sph_exa_repro::exa::{DistributedBuilder, DistributedConfig};
use sph_exa_repro::parents::sphflow;
use sph_exa_repro::profiler::Phase;
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

fn main() {
    let nx = 14;
    let scenario = SquarePatchConfig { nx, nz: nx, ..Default::default() };
    let sph = SphConfig {
        gamma: scenario.gamma,
        target_neighbors: 60,
        max_h_iterations: 6,
        ..Default::default()
    };
    let steps = 5;
    println!("distributed square patch, {} particles, {steps} macro-steps\n", nx * nx * nx);

    let mut reference_fp = None;
    for nranks in [1usize, 2, 4] {
        let mut sim = DistributedBuilder::new(square_patch(&scenario))
            .config(sph)
            .distributed(DistributedConfig { nranks, rebalance_every: 3, ..Default::default() })
            .build()
            .expect("valid distributed setup");
        // Warm up, then reset the per-rank timers so they cover exactly
        // one macro-step — the contract `calibrate_machine` expects.
        sim.run(steps - 1).expect("stable run");
        for t in sim.timers() {
            t.reset();
        }
        sim.run(1).expect("stable final step");
        let fp = fingerprint(&sim.sys);
        match reference_fp {
            None => reference_fp = Some(fp),
            Some(want) => assert_eq!(fp, want, "rank count changed the physics bits!"),
        }

        let log = sim.exchange_log();
        println!(
            "nranks={nranks}: fingerprint {fp:#018x}  imbalance {:.3}  ghosts/step {:.0}  \
             migrations {}  renegotiations {}  rebalances {}",
            sim.imbalance(),
            log.ghosts_imported as f64 / log.density_attempts.max(1) as f64,
            log.migrations,
            log.renegotiations,
            log.rebalances,
        );
        for (r, t) in sim.timers().iter().enumerate() {
            println!(
                "  rank {r}: density {:.3}s  gradients {:.3}s  momentum {:.3}s  total {:.3}s",
                t.get(Phase::Density),
                t.get(Phase::Gradients),
                t.get(Phase::Momentum),
                t.total(),
            );
        }

        // Feed the measured exchange into the cluster model: same step, as
        // it would cost on Piz Daint with the SPH-flow cost model, with the
        // core rate calibrated from this host's measured per-rank seconds.
        if nranks > 1 {
            let setup = sphflow();
            let halos = sim.last_exchange().expect("multi-rank exchange").clone();
            let measured = MeasuredStep {
                decomposition: sim.decomposition(),
                halos: &halos,
                work: sim.per_particle_work(),
            };
            let per_rank_seconds: Vec<f64> = sim.timers().iter().map(|t| t.total()).collect();
            let cost = setup.cost_for(sph_exa_repro::parents::Scenario::SquarePatch);
            let machine = calibrate_machine(piz_daint(), &cost, &measured, &per_rank_seconds);
            let model = StepModelConfig {
                partitioner: Partitioner::Orb,
                balancing: LoadBalancing::Dynamic,
                machine,
                cost,
            };
            let t = model_measured_step(&measured, &model);
            println!(
                "  modelled on {} (calibrated {:.2} GF/s/core): compute {:.3e}s  comm {:.3e}s  \
                 collective {:.3e}s  halo {} particles  LB {:.3}",
                machine.name,
                machine.core_gflops,
                t.compute_max(),
                t.comm,
                t.collective,
                t.halo_volume,
                t.load_balance(),
            );
        }
        println!();
    }
    println!(
        "all rank counts produced the same fingerprint: decomposition, migration and \
         rebalancing changed where particles were computed, never what was computed."
    );
}
