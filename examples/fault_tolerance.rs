//! Fault tolerance end-to-end: checkpoint/restart with bit-exact resume,
//! silent-data-corruption injection and detection, and the Daly-interval
//! arithmetic — the Table 4 "Checkpoint-Restart" and "Error Detection"
//! features in action.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::exa::Simulation;
use sph_exa_repro::ft::checkpoint::{CheckpointStore, MemoryStore};
use sph_exa_repro::ft::daly::{daly_interval, expected_waste};
use sph_exa_repro::ft::sdc::{ChecksumDetector, SdcDetector, SdcInjector};
use sph_exa_repro::scenarios::{evrard_collapse, EvrardConfig};

fn main() {
    // --- 1. Checkpoint, diverge, restore, verify bit-exact resume -------
    println!("== checkpoint / restart ==");
    let cfg = EvrardConfig { n_target: 2_000, ..Default::default() };
    let config = SphConfig { target_neighbors: 50, ..Default::default() };
    let mut sim = Simulation::new(evrard_collapse(&cfg), config).expect("valid");
    sim.run(3).expect("stable steps");

    let mut store = MemoryStore::new();
    let bytes = store.save("step-3", &sim.sys).expect("save");
    println!("checkpoint at step 3: {bytes} bytes for {} particles", sim.sys.len());

    // Continue the "original" run.
    sim.run(2).expect("stable steps");
    let original_positions = sim.sys.x.clone();

    // Restore and replay the same two steps. `resume` (not `new`) keeps
    // the checkpointed accelerations valid for the first half-kick, making
    // the replay bit-exact.
    let restored = store.restore("step-3").expect("restore");
    let mut replay = Simulation::resume(restored, config).expect("valid");
    replay.run(2).expect("stable steps");
    let max_dev = replay
        .sys
        .x
        .iter()
        .zip(&original_positions)
        .map(|(a, b)| (*a - *b).norm())
        .fold(0.0, f64::max);
    println!("replayed 2 steps after restore: max position deviation = {max_dev:.3e}");
    assert!(max_dev < 1e-12, "restart must be deterministic");

    // --- 2. Silent data corruption: inject and detect -------------------
    println!("\n== silent data corruption ==");
    let mut detector = ChecksumDetector::new();
    detector.arm(&sim.sys);
    println!("armed checksum detector; verdict now: {:?}", detector.check(&sim.sys));
    let mut injector = SdcInjector::new(2024);
    let what = injector.inject(&mut sim.sys);
    println!("injected a single bit flip at {what}");
    let verdict = detector.check(&sim.sys);
    println!("detector verdict: {verdict:?}");
    assert!(verdict.is_corrupted());

    // Recover from the checkpoint — the full loop.
    sim.sys = store.restore("step-3").expect("re-restore");
    detector.arm(&sim.sys);
    println!("restored from checkpoint; verdict: {:?}", detector.check(&sim.sys));

    // --- 3. Optimal checkpoint interval ---------------------------------
    println!("\n== Daly-optimal checkpoint interval ==");
    let checkpoint_cost = 30.0; // seconds to write
    let recovery_cost = 60.0;
    for mtbf in [3_600.0, 86_400.0] {
        let w = daly_interval(checkpoint_cost, mtbf);
        let waste = expected_waste(w, checkpoint_cost, recovery_cost, mtbf);
        println!(
            "MTBF {:>6.0}s: checkpoint every {:7.0}s of work → expected waste {:.1}%",
            mtbf,
            w,
            waste * 100.0
        );
    }
}
