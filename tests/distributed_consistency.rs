//! Integration: distributed-memory consistency.
//!
//! The cluster model charges communication for halo exchanges; this test
//! proves those halos are *sufficient*: evaluating the density of each
//! rank's owned particles using only its local subdomain (owned + imported
//! ghosts) reproduces the global evaluation bit-for-bit. This is the
//! correctness contract a real MPI implementation of the mini-app would
//! rely on.

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::core::density::compute_density;
use sph_exa_repro::core::ParticleSystem;
use sph_exa_repro::domain::{halo_sets, orb_partition, sfc_partition, HaloRadiusPolicy, SfcKind};
use sph_exa_repro::math::{Aabb, Periodicity, SplitMix64, Vec3};
use sph_exa_repro::scenarios::{evrard_collapse, EvrardConfig};
use sph_exa_repro::tree::CellGrid;

/// Freeze the smoothing lengths: one search at the stored h, no
/// adaptation. Distributed SPH codes iterate h collectively *before* the
/// halo exchange and then evaluate at fixed h; this mirrors that protocol
/// (otherwise the per-rank iteration would be path-dependent through the
/// iteration cap).
fn frozen(cfg: &SphConfig) -> SphConfig {
    SphConfig { max_h_iterations: 1, ..*cfg }
}

/// Global density evaluation.
fn global_density(sys: &mut ParticleSystem, cfg: &SphConfig) -> Vec<f64> {
    let kernel = cfg.kernel.build();
    let active: Vec<u32> = (0..sys.len() as u32).collect();
    // Adapt h globally, then evaluate once at the frozen h — the same
    // two-phase protocol the distributed evaluation uses. The grid is
    // rebuilt between the phases because the first pass rescales h.
    let support = sph_exa_repro::kernels::SUPPORT_RADIUS;
    let grid = CellGrid::build(&sys.x, sys.periodicity, support * sys.max_h());
    compute_density(sys, &grid, kernel.as_ref(), cfg, &active);
    let grid = CellGrid::build(&sys.x, sys.periodicity, support * sys.max_h());
    compute_density(sys, &grid, kernel.as_ref(), &frozen(cfg), &active);
    sys.rho.clone()
}

/// Per-rank evaluation with halos; returns the reassembled global field.
fn distributed_density(
    sys: &ParticleSystem,
    cfg: &SphConfig,
    assignment: &sph_exa_repro::domain::Decomposition,
) -> Vec<f64> {
    // Halo radius via the shared negotiation API. The evaluation below is
    // at *frozen* h (already adapted globally before the exchange), so the
    // frozen policy — support radius × global max h, no iteration
    // headroom — is exactly sufficient. This used to be a copy-pasted
    // `2.0 ×` over-estimate; using the tight shared radius and still
    // matching the global evaluation bit-for-bit is the proof it is right.
    let per_rank_max_h: Vec<f64> = (0..assignment.nparts as u32)
        .map(|r| assignment.indices_of(r).iter().map(|&i| sys.h[i as usize]).fold(0.0, f64::max))
        .collect();
    let radius =
        HaloRadiusPolicy::frozen(sph_exa_repro::kernels::SUPPORT_RADIUS).negotiate(&per_rank_max_h);
    let halos = halo_sets(&sys.x, assignment, radius, &sys.periodicity);
    let mut rho_global = vec![0.0; sys.len()];
    for rank in 0..assignment.nparts as u32 {
        let owned = assignment.indices_of(rank);
        if owned.is_empty() {
            continue;
        }
        // Local system: owned first, then ghosts.
        let mut local_ids = owned.clone();
        local_ids.extend_from_slice(&halos.imports[rank as usize]);
        let mut local = sys.subset(&local_ids);
        let support = sph_exa_repro::kernels::SUPPORT_RADIUS;
        let grid = CellGrid::build(&local.x, local.periodicity, support * local.max_h());
        let kernel = cfg.kernel.build();
        // Only owned particles are active; ghosts provide support. h is
        // frozen (already adapted globally before the exchange).
        let active: Vec<u32> = (0..owned.len() as u32).collect();
        compute_density(&mut local, &grid, kernel.as_ref(), &frozen(cfg), &active);
        for (k, &gid) in owned.iter().enumerate() {
            rho_global[gid as usize] = local.rho[k];
        }
    }
    rho_global
}

fn random_ball(n: usize, seed: u64) -> ParticleSystem {
    let mut rng = SplitMix64::new(seed);
    let mut x = Vec::new();
    while x.len() < n {
        let p = Vec3::new(rng.next_f64(), rng.next_f64(), rng.next_f64());
        x.push(p);
    }
    ParticleSystem::new(
        x,
        vec![Vec3::ZERO; n],
        vec![1.0 / n as f64; n],
        vec![1.0; n],
        0.08,
        Periodicity::open(Aabb::unit()),
    )
}

#[test]
fn per_rank_density_matches_global_with_orb() {
    let cfg = SphConfig { target_neighbors: 40, max_h_iterations: 4, ..Default::default() };
    let mut sys = random_ball(2000, 3);
    let rho_global = global_density(&mut sys, &cfg);
    let d = orb_partition(&sys.x, 5, &[]);
    let rho_dist = distributed_density(&sys, &cfg, &d);
    for i in 0..sys.len() {
        let rel = (rho_dist[i] - rho_global[i]).abs() / rho_global[i];
        assert!(
            rel < 1e-12,
            "particle {i}: distributed ρ {} vs global {} (rank {})",
            rho_dist[i],
            rho_global[i],
            d.assignment[i]
        );
    }
}

#[test]
fn per_rank_density_matches_global_with_sfc() {
    let cfg = SphConfig { target_neighbors: 40, max_h_iterations: 4, ..Default::default() };
    let mut sys = random_ball(1500, 7);
    let rho_global = global_density(&mut sys, &cfg);
    let d = sfc_partition(&sys.x, &sys.bounds(), 4, SfcKind::Hilbert, &[]);
    let rho_dist = distributed_density(&sys, &cfg, &d);
    for i in 0..sys.len() {
        let rel = (rho_dist[i] - rho_global[i]).abs() / rho_global[i];
        assert!(rel < 1e-12, "particle {i}: rel error {rel}");
    }
}

#[test]
fn per_rank_density_matches_global_on_clustered_evrard() {
    // The hard case: strongly varying h across the cloud.
    let cfg = SphConfig { target_neighbors: 50, max_h_iterations: 4, ..Default::default() };
    let mut sys = evrard_collapse(&EvrardConfig { n_target: 2500, ..Default::default() });
    let rho_global = global_density(&mut sys, &cfg);
    let d = orb_partition(&sys.x, 6, &[]);
    let rho_dist = distributed_density(&sys, &cfg, &d);
    let mut worst = 0.0_f64;
    for i in 0..sys.len() {
        worst = worst.max((rho_dist[i] - rho_global[i]).abs() / rho_global[i]);
    }
    assert!(worst < 1e-12, "worst relative density mismatch {worst}");
}
