//! Integration: the Evrard collapse (§5.1) under the astrophysics
//! configurations — self-gravity, energy ledger, collapse dynamics.

use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::parents::{changa, sphynx};
use sph_exa_repro::scenarios::evrard::evrard_gravitational_energy;
use sph_exa_repro::scenarios::{evrard_collapse, EvrardConfig};

fn build(n: usize) -> sph_exa_repro::core::ParticleSystem {
    evrard_collapse(&EvrardConfig { n_target: n, ..Default::default() })
}

#[test]
fn measured_potential_matches_analytic_profile() {
    // W of the ρ ∝ 1/r sphere is −2GM²/(3R); the tree-measured value on a
    // finite softened particle realisation must land within a few percent.
    let setup = sphynx();
    let sys = build(4000);
    let mut sim = SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    let all: Vec<u32> = (0..sim.sys.len() as u32).collect();
    sim.evaluate_derivatives(&all);
    let c = sim.conservation();
    let w_analytic = evrard_gravitational_energy(1.0, 1.0, 1.0);
    let rel = ((c.gravitational_energy - w_analytic) / w_analytic).abs();
    assert!(
        rel < 0.05,
        "W measured {} vs analytic {w_analytic} (rel {rel})",
        c.gravitational_energy
    );
}

#[test]
fn cold_cloud_collapses_and_conserves_energy() {
    let setup = sphynx();
    let sys = build(3000);
    let mut sim = SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    sim.step().expect("stable step");
    let c0 = sim.conservation();
    let r0 = mean_radius(&sim.sys);
    for _ in 0..8 {
        sim.step().expect("stable step");
    }
    let c1 = sim.conservation();
    let r1 = mean_radius(&sim.sys);
    assert!(r1 < r0, "cloud must contract: ⟨r⟩ {r0} → {r1}");
    assert!(c1.kinetic_energy > c0.kinetic_energy, "infall must gain kinetic energy");
    assert!(c1.gravitational_energy < c0.gravitational_energy, "potential must deepen");
    assert!(c1.energy_drift(&c0) < 0.02, "energy drift {}", c1.energy_drift(&c0));
    assert!(sim.sys.sanity_check().is_ok());
}

#[test]
fn central_density_grows_during_collapse() {
    let setup = sphynx();
    let sys = build(4000);
    let mut sim = SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    sim.step().expect("stable step");
    let rho0 = central_density(&sim.sys);
    for _ in 0..8 {
        sim.step().expect("stable step");
    }
    let rho1 = central_density(&sim.sys);
    assert!(rho1 > 1.2 * rho0, "central density should grow during collapse: {rho0} → {rho1}");
}

#[test]
fn changa_runs_evrard_with_block_timesteps() {
    // ChaNGa's individual time-stepping on the centrally-condensed cloud:
    // after some collapse the core needs finer steps than the envelope, so
    // the active fraction per substep drops below one — the
    // multi-time-stepping advantage behind Fig. 2b.
    let setup = changa();
    let sys = build(3000);
    let mut sim = SimulationBuilder::new(sys)
        .config(setup.sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    let mut saw_rung_spread = false;
    for _ in 0..6 {
        let r = sim.step().expect("stable step");
        if r.substeps > 1 {
            saw_rung_spread = true;
            assert!(r.active_fraction < 1.0);
        }
    }
    assert!(sim.sys.sanity_check().is_ok());
    // Rung spread is expected but depends on the state; record it softly:
    // the run must at least complete, and if rungs spread the saving shows.
    let _ = saw_rung_spread;
}

fn mean_radius(sys: &sph_exa_repro::core::ParticleSystem) -> f64 {
    sys.x.iter().map(|p| p.norm()).sum::<f64>() / sys.len() as f64
}

fn central_density(sys: &sph_exa_repro::core::ParticleSystem) -> f64 {
    let core: Vec<f64> =
        (0..sys.len()).filter(|&i| sys.x[i].norm() < 0.15).map(|i| sys.rho[i]).collect();
    assert!(!core.is_empty());
    core.iter().sum::<f64>() / core.len() as f64
}
