//! Integration: the Fig. 4 trace generator and the Tables 1–5 renderers
//! produce the structures the paper describes.

use sph_exa_repro::cluster::tracegen::{step_trace, PhaseProfile};
use sph_exa_repro::cluster::{
    model_step, piz_daint, CostModel, LoadBalancing, Partitioner, StepModelConfig, StepWorkload,
};
use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::parents::features::{table1, table2, table3, table4};
use sph_exa_repro::parents::{render_table, sphynx};
use sph_exa_repro::profiler::{pop_metrics, render_gantt, WorkerState};
use sph_exa_repro::scenarios::{evrard_collapse, EvrardConfig};

fn modelled_timing(ranks: usize, balancing: LoadBalancing) -> sph_exa_repro::cluster::StepTiming {
    let setup = sphynx();
    let cfg = EvrardConfig { n_target: 2500, ..Default::default() };
    let sph = SphConfig { target_neighbors: 50, ..setup.sph };
    let mut sim = SimulationBuilder::new(evrard_collapse(&cfg))
        .config(sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    sim.step().expect("stable step");
    let work = sim.per_particle_work().to_vec();
    let zeros = vec![0.0; sim.sys.len()];
    let workload = StepWorkload {
        positions: &sim.sys.x,
        sph_work: &work,
        gravity_work: &zeros,
        interaction_radius: 2.0 * sim.sys.max_h(),
        periodicity: sim.sys.periodicity,
        bounds: sim.sys.bounds(),
    };
    let model = StepModelConfig {
        partitioner: if balancing == LoadBalancing::Dynamic {
            Partitioner::Sfc(sph_exa_repro::domain::SfcKind::Hilbert)
        } else {
            setup.partitioner
        },
        balancing,
        machine: piz_daint(),
        cost: CostModel::default(),
    };
    model_step(&workload, ranks, &model, Some(&work))
}

#[test]
fn figure4_trace_shows_the_serial_tree_pathology() {
    let timing = modelled_timing(8, LoadBalancing::Static);
    let trace = step_trace(&timing, &PhaseProfile::sphynx_evrard());
    // Worker 0 carries tree-build useful time; the rest of its node idles
    // during phase A.
    let a_useful: Vec<f64> = (0..8)
        .map(|w| {
            trace
                .spans(w)
                .iter()
                .filter(|s| {
                    s.phase == sph_exa_repro::profiler::Phase::TreeBuild
                        && s.state == WorkerState::Useful
                })
                .map(|s| s.duration())
                .sum()
        })
        .collect();
    assert!(a_useful[0] > 0.0);
    assert!(a_useful[1..].iter().all(|&t| t == 0.0), "{a_useful:?}");
    // Idle regions exist (the "black" areas of Fig. 4).
    assert!((1..8).any(|w| trace.state_time(w, WorkerState::Idle) > 0.0));
    // The rendered Gantt mentions the phase letters and the legend.
    let g = render_gantt(&trace, 80);
    assert!(g.contains('A'));
    assert!(g.contains("legend"));
}

#[test]
fn fixing_the_pathologies_improves_pop_lb() {
    // §5.2: the analysis led to parallelising the tree and rebalancing;
    // the modelled POP load balance must improve accordingly.
    let sick =
        step_trace(&modelled_timing(8, LoadBalancing::Static), &PhaseProfile::sphynx_evrard());
    let fixed_timing = modelled_timing(8, LoadBalancing::Dynamic);
    let fixed = step_trace(
        &fixed_timing,
        &PhaseProfile { serial_tree: false, ..PhaseProfile::sphynx_evrard() },
    );
    let lb_sick = pop_metrics(&sick, None).load_balance;
    let lb_fixed = pop_metrics(&fixed, None).load_balance;
    assert!(lb_fixed > lb_sick + 0.1, "fixes should improve LB: {lb_sick:.3} → {lb_fixed:.3}");
}

#[test]
fn tables_render_with_paper_content() {
    let t1 = render_table(&table1());
    assert!(t1.contains("SPHYNX") && t1.contains("IAD") && t1.contains("Multipoles (4-pole)"));
    assert!(t1.contains("ChaNGa") && t1.contains("Multipoles (16-pole)"));
    assert!(t1.contains("SPH-flow"));
    let t2 = render_table(&table2());
    assert!(t2.contains("Sinc, M4 spline, Wendland"));
    let t3 = render_table(&table3());
    assert!(t3.contains("Space Filling Curve") && t3.contains("Orthogonal Recursive Bisection"));
    assert!(t3.contains("110,000")); // ChaNGa LOC
    let t4 = render_table(&table4());
    assert!(t4.contains("Optimal interval, Multilevel"));
    assert!(t4.contains("Silent data corruption detectors"));
}
