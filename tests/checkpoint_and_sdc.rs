//! Integration: the fault-tolerance pipeline end to end — checkpoint,
//! bit-exact resume, corruption detection across module boundaries.

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::exa::Simulation;
use sph_exa_repro::ft::checkpoint::{CheckpointStore, DiskStore, MemoryStore};
use sph_exa_repro::ft::sdc::{ChecksumDetector, SdcDetector, SdcInjector};
use sph_exa_repro::scenarios::{evrard_collapse, square_patch, EvrardConfig, SquarePatchConfig};

fn small_config() -> SphConfig {
    SphConfig { target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
}

#[test]
fn restart_is_bit_exact_for_the_square_patch() {
    let cfg = SquarePatchConfig { nx: 10, nz: 10, ..Default::default() };
    let sph = SphConfig { gamma: cfg.gamma, ..small_config() };
    let mut original = Simulation::new(square_patch(&cfg), sph).unwrap();
    original.run(2).expect("stable steps");

    let mut store = MemoryStore::new();
    store.save("mid", &original.sys).unwrap();
    original.run(3).expect("stable steps");

    let mut replay = Simulation::resume(store.restore("mid").unwrap(), sph).unwrap();
    replay.run(3).expect("stable steps");

    for i in 0..original.sys.len() {
        assert_eq!(original.sys.x[i], replay.sys.x[i], "position {i} diverged");
        assert_eq!(original.sys.v[i], replay.sys.v[i], "velocity {i} diverged");
        assert_eq!(original.sys.u[i], replay.sys.u[i], "energy {i} diverged");
    }
    assert_eq!(original.sys.time, replay.sys.time);
    assert_eq!(original.sys.step_count, replay.sys.step_count);
}

#[test]
fn restart_is_bit_exact_with_gravity() {
    let setup = sph_exa_repro::parents::sphynx();
    let cfg = EvrardConfig { n_target: 1500, ..Default::default() };
    let mut original = sph_exa_repro::exa::SimulationBuilder::new(evrard_collapse(&cfg))
        .config(setup.sph)
        .gravity(setup.gravity.unwrap())
        .build()
        .unwrap();
    original.run(2).expect("stable steps");
    let mut store = MemoryStore::new();
    store.save("mid", &original.sys).unwrap();
    original.run(2).expect("stable steps");

    let mut replay = Simulation::resume_with_gravity(
        store.restore("mid").unwrap(),
        setup.sph,
        setup.gravity.unwrap(),
    )
    .unwrap();
    replay.run(2).expect("stable steps");
    let max_dev =
        original.sys.x.iter().zip(&replay.sys.x).map(|(a, b)| (*a - *b).norm()).fold(0.0, f64::max);
    assert_eq!(max_dev, 0.0, "gravity restart deviated by {max_dev}");
}

#[test]
fn disk_checkpoints_survive_process_boundaries() {
    let dir = std::env::temp_dir().join(format!("sphexa-it-{}", std::process::id()));
    let cfg = SquarePatchConfig { nx: 8, nz: 8, ..Default::default() };
    let sph = SphConfig { gamma: cfg.gamma, ..small_config() };
    let mut sim = Simulation::new(square_patch(&cfg), sph).unwrap();
    sim.run(1).expect("stable steps");
    {
        let mut store = DiskStore::new(&dir).unwrap();
        store.save("persist", &sim.sys).unwrap();
    }
    // A brand-new store instance (≈ a restarted process) finds it.
    let store = DiskStore::new(&dir).unwrap();
    assert_eq!(store.labels(), vec!["persist".to_string()]);
    let restored = store.restore("persist").unwrap();
    assert_eq!(restored.len(), sim.sys.len());
    assert_eq!(restored.time, sim.sys.time);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_corruption_is_always_caught_by_the_checksum() {
    let cfg = SquarePatchConfig { nx: 8, nz: 8, ..Default::default() };
    let sph = SphConfig { gamma: cfg.gamma, ..small_config() };
    let mut sim = Simulation::new(square_patch(&cfg), sph).unwrap();
    sim.run(1).expect("stable steps");
    for seed in 0..20 {
        let mut det = ChecksumDetector::new();
        det.arm(&sim.sys);
        let mut backup = sim.sys.clone();
        let what = SdcInjector::new(seed).inject(&mut sim.sys);
        assert!(det.check(&sim.sys).is_corrupted(), "seed {seed}: missed injection at {what}");
        std::mem::swap(&mut sim.sys, &mut backup); // restore clean state
    }
}

#[test]
fn corrupted_checkpoint_cannot_be_restored_silently() {
    let cfg = SquarePatchConfig { nx: 8, nz: 8, ..Default::default() };
    let sph = SphConfig { gamma: cfg.gamma, ..small_config() };
    let sim = Simulation::new(square_patch(&cfg), sph).unwrap();
    let bytes = sph_exa_repro::ft::codec::encode(&sim.sys);
    // Flip every 997th byte in turn; decode must refuse each time.
    for k in (0..bytes.len()).step_by(997) {
        let mut corrupted = bytes.clone();
        corrupted[k] ^= 0x40;
        assert!(
            sph_exa_repro::ft::codec::decode(&corrupted).is_err(),
            "byte {k}: corruption slipped through"
        );
    }
}
