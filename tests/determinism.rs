//! Determinism across thread counts.
//!
//! The parallel rayon shim splits every hot loop at fixed chunk boundaries
//! (independent of the worker count) and the call sites reduce chunk
//! results in order, so a full time-step must produce **bit-identical**
//! state and conservation sums under `SPH_THREADS=1`, `2`, and `7` (a
//! non-power-of-two on purpose: it exercises ragged task distribution).
//! This property is what keeps the sph-ft conservation-drift SDC detector
//! meaningful — a drift can only mean corruption, never scheduling noise.
//!
//! Every scenario below now runs through the cell-list/CSR neighbour
//! pipeline (grid sort + CSR list build + SoA kernel passes + ping-pong
//! update), so these fingerprints also pin the pipeline's determinism:
//! the CSR rows are assembled per fixed chunk and spliced in order, and
//! the grid's counting sort is sequential — nothing in the hot path
//! depends on `SPH_THREADS` or, via the rank-count test, on `nranks`.

use sph_exa_repro::core::diagnostics::Conservation;
use sph_exa_repro::exa::{DistributedBuilder, Simulation, SimulationBuilder};
use sph_exa_repro::scenarios::{
    evrard_collapse, square_patch, EvrardConfig, Resolution, Scenario, SedovScenario,
    SquarePatchConfig,
};
use sph_exa_repro::tree::{GravityConfig, MultipoleOrder};

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Everything a step exposes, as raw bits (f64 compare would hide −0.0 /
/// NaN mismatches and invite tolerance creep — the contract is *bit*
/// identity).
#[derive(Debug, PartialEq, Eq)]
struct StepFingerprint {
    dt: u64,
    time: u64,
    sph_interactions: u64,
    nodes_visited: u64,
    mass: u64,
    momentum: [u64; 3],
    angular_momentum: [u64; 3],
    kinetic: u64,
    internal: u64,
    gravitational: u64,
    state_hash: u64,
}

fn fingerprint(sim: &Simulation, dt: f64, interactions: u64, nodes: u64) -> StepFingerprint {
    let phi_used = sim.gravity.is_some();
    let c = if phi_used { sim.conservation() } else { Conservation::measure(&sim.sys, None) };
    // Order-dependent FNV over every particle's full state (shared helper,
    // so all determinism suites hash exactly the same field set).
    let hash = sph_exa_repro::core::diagnostics::state_fingerprint(&sim.sys);
    StepFingerprint {
        dt: dt.to_bits(),
        time: sim.sys.time.to_bits(),
        sph_interactions: interactions,
        nodes_visited: nodes,
        mass: c.total_mass.to_bits(),
        momentum: [c.momentum.x.to_bits(), c.momentum.y.to_bits(), c.momentum.z.to_bits()],
        angular_momentum: [
            c.angular_momentum.x.to_bits(),
            c.angular_momentum.y.to_bits(),
            c.angular_momentum.z.to_bits(),
        ],
        kinetic: c.kinetic_energy.to_bits(),
        internal: c.internal_energy.to_bits(),
        gravitational: c.gravitational_energy.to_bits(),
        state_hash: hash,
    }
}

fn square_patch_fingerprint(threads: usize) -> StepFingerprint {
    let ic = square_patch(&SquarePatchConfig { nx: 12, nz: 12, ..SquarePatchConfig::default() });
    let mut sim =
        SimulationBuilder::new(ic).num_threads(threads).build().expect("square patch builds");
    let report = sim.step().expect("stable step");
    fingerprint(&sim, report.dt, report.stats.sph_interactions, report.stats.neighbor.nodes_visited)
}

fn evrard_fingerprint(threads: usize) -> StepFingerprint {
    let ic = evrard_collapse(&EvrardConfig { n_target: 1500, seed: 7, ..EvrardConfig::default() });
    let gravity =
        GravityConfig { g: 1.0, theta: 0.6, softening: 1e-2, order: MultipoleOrder::Quadrupole };
    let mut sim = SimulationBuilder::new(ic)
        .gravity(gravity)
        .num_threads(threads)
        .build()
        .expect("evrard builds");
    let report = sim.step().expect("stable step");
    fingerprint(&sim, report.dt, report.stats.sph_interactions, report.stats.neighbor.nodes_visited)
}

#[test]
fn square_patch_step_is_bit_identical_across_thread_counts() {
    let reference = square_patch_fingerprint(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let fp = square_patch_fingerprint(threads);
        assert_eq!(
            reference, fp,
            "square patch step differs between SPH_THREADS={} and {}",
            THREAD_COUNTS[0], threads
        );
    }
}

#[test]
fn evrard_step_is_bit_identical_across_thread_counts() {
    let reference = evrard_fingerprint(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let fp = evrard_fingerprint(threads);
        assert_eq!(
            reference, fp,
            "Evrard step differs between SPH_THREADS={} and {}",
            THREAD_COUNTS[0], threads
        );
    }
}

/// Sedov at a CI-sized resolution, built through the scenario registry —
/// the shock-dominated workload the fixed-chunk contract must also cover
/// (strong shocks exercise the h-iteration escalation and the Balsara
/// branches that the two smooth paper tests never touch).
fn sedov_fingerprint(threads: usize) -> StepFingerprint {
    let setup = SedovScenario.init(Resolution { scale: 0.375 });
    let mut sim = SimulationBuilder::new(setup.sys)
        .config(setup.config)
        .num_threads(threads)
        .build()
        .expect("sedov builds");
    let report = sim.step().expect("stable step");
    fingerprint(&sim, report.dt, report.stats.sph_interactions, report.stats.neighbor.nodes_visited)
}

#[test]
fn sedov_step_is_bit_identical_across_thread_counts() {
    let reference = sedov_fingerprint(THREAD_COUNTS[0]);
    for &threads in &THREAD_COUNTS[1..] {
        let fp = sedov_fingerprint(threads);
        assert_eq!(
            reference, fp,
            "Sedov step differs between SPH_THREADS={} and {}",
            THREAD_COUNTS[0], threads
        );
    }
}

#[test]
fn sedov_is_bit_identical_across_rank_counts() {
    // nranks {1, 2}: the distributed driver must reproduce the
    // single-rank shock trajectory bit-for-bit (state hash over every
    // particle field after two macro-steps).
    let state = sph_exa_repro::core::diagnostics::state_fingerprint;
    let single = {
        let setup = SedovScenario.init(Resolution { scale: 0.375 });
        let mut sim =
            SimulationBuilder::new(setup.sys).config(setup.config).build().expect("builds");
        sim.run(2).expect("stable steps");
        state(&sim.sys)
    };
    for nranks in [1usize, 2] {
        let setup = SedovScenario.init(Resolution { scale: 0.375 });
        let mut dist = DistributedBuilder::new(setup.sys)
            .config(setup.config)
            .nranks(nranks)
            .build()
            .expect("distributed builds");
        dist.run(2).expect("stable steps");
        assert_eq!(
            state(&dist.sys),
            single,
            "{nranks}-rank Sedov diverged from the single-rank driver"
        );
    }
}
