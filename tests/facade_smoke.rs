//! Smoke test of the `sph_exa_repro` facade: the re-exported workspace
//! crates must be sufficient to build a simulation through
//! `SimulationBuilder`, run a step, and read finite conservation
//! diagnostics — the minimal "the umbrella crate works" guarantee every
//! example relies on.

use sph_exa_repro::core::diagnostics::Conservation;
use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::math::Vec3;
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

#[test]
fn facade_builds_a_simulation_and_steps_it() {
    let ic = square_patch(&SquarePatchConfig { nx: 8, nz: 8, ..SquarePatchConfig::default() });
    let mut sim = SimulationBuilder::new(ic).build().expect("builder must produce a simulation");

    let before = Conservation::measure(&sim.sys, None);
    assert!(before.total_energy().is_finite());
    assert!(before.total_mass > 0.0);

    let result = sim.step().expect("stable step");
    assert!(result.dt > 0.0 && result.dt.is_finite());
    assert!(result.stats.sph_interactions > 0);

    let after = Conservation::measure(&sim.sys, None);
    assert!(after.total_energy().is_finite(), "energy must stay finite after a step");
    assert!(
        (after.total_mass - before.total_mass).abs() < 1e-12 * before.total_mass,
        "mass is exactly conserved"
    );
    assert!(after.momentum.is_finite(), "momentum must stay finite");
}

#[test]
fn facade_reexports_cover_the_math_substrate() {
    // The doc-example contract from src/lib.rs.
    let v = Vec3::new(1.0, 2.0, 3.0);
    assert_eq!(v.norm_sq(), 14.0);
}
