//! Integration: the scenario engine — registry contract, generic runner
//! over both drivers, single-vs-distributed bit identity for *every*
//! registered workload, and the validation-report machinery.
//!
//! Heavy accuracy validation (shock radius vs Sedov, L1 vs the exact
//! Riemann solution, …) runs at full resolution in the release-mode
//! `scenario_suite` binary (CI job `scenario-suite`); these tests pin
//! the *engine contract* at CI-debug-sized resolutions.

use sph_exa_repro::core::diagnostics::state_fingerprint;
use sph_exa_repro::scenarios::{
    run_scenario, DriverKind, Resolution, RunOptions, ScenarioRegistry,
};

/// Small enough for debug-mode runs, large enough that every scenario
/// builds a meaningful 3-D particle set.
const TINY: Resolution = Resolution { scale: 0.375 };

fn quick(driver: DriverKind) -> RunOptions {
    RunOptions {
        resolution: TINY,
        driver,
        end_time: Some(f64::INFINITY),
        max_steps: 2,
        sample_every: 1,
    }
}

#[test]
fn registry_has_all_six_builtin_scenarios() {
    let reg = ScenarioRegistry::builtin();
    let names = reg.names();
    assert_eq!(
        names,
        vec!["square-patch", "evrard", "sedov", "sod", "gresho", "kelvin-helmholtz"],
        "builtin registry changed — update the catalogue and this test together"
    );
    for sc in reg.iter() {
        assert!(reg.get(sc.name()).is_some());
        assert!(!sc.reference().is_empty());
        assert!(!sc.analytic_check().is_empty());
        assert!(sc.end_time() > 0.0);
        assert!(sc.l1_tolerance() > 0.0);
    }
    assert!(reg.get("no-such-scenario").is_none());
}

#[test]
fn registry_rejects_duplicate_names() {
    let mut reg = ScenarioRegistry::builtin();
    let err = reg
        .register(Box::new(sph_exa_repro::scenarios::SedovScenario))
        .expect_err("duplicate registration must fail");
    assert!(err.contains("sedov"), "{err}");
}

#[test]
fn every_scenario_inits_deterministically_and_validates_its_config() {
    let reg = ScenarioRegistry::builtin();
    for sc in reg.iter() {
        let a = sc.init(TINY);
        let b = sc.init(TINY);
        assert!(a.config.validate().is_ok(), "{}: invalid config", sc.name());
        assert!(a.sys.sanity_check().is_ok(), "{}: insane IC", sc.name());
        assert_eq!(
            state_fingerprint(&a.sys),
            state_fingerprint(&b.sys),
            "{}: init is not deterministic",
            sc.name()
        );
        // Resolution scaling actually changes the particle count.
        let big = sc.init(Resolution { scale: 0.6 });
        assert!(big.sys.len() > a.sys.len(), "{}: resolution knob inert", sc.name());
    }
}

#[test]
fn every_scenario_runs_bit_identically_on_both_drivers() {
    // The acceptance criterion of the scenario engine: for every
    // registered workload, `Simulation` and `DistributedSimulation`
    // (nranks 1 and 2) produce the bit-identical particle state.
    let reg = ScenarioRegistry::builtin();
    for sc in reg.iter() {
        let single = run_scenario(sc, &quick(DriverKind::Single))
            .unwrap_or_else(|e| panic!("{}: single-driver run failed: {e}", sc.name()));
        assert_eq!(single.steps, 2, "{}", sc.name());
        let want = state_fingerprint(&single.sys);
        for nranks in [1usize, 2] {
            let dist = run_scenario(sc, &quick(DriverKind::Distributed { nranks }))
                .unwrap_or_else(|e| panic!("{}: {nranks}-rank run failed: {e}", sc.name()));
            assert_eq!(
                state_fingerprint(&dist.sys),
                want,
                "{}: {nranks}-rank run diverged from the single-rank driver",
                sc.name()
            );
            // Conservation diagnostics agree bit-for-bit too.
            assert_eq!(
                dist.final_conservation.kinetic_energy.to_bits(),
                single.final_conservation.kinetic_energy.to_bits(),
                "{}",
                sc.name()
            );
        }
    }
}

#[test]
fn validation_reports_are_well_formed() {
    let reg = ScenarioRegistry::builtin();
    for sc in reg.iter() {
        let run = run_scenario(sc, &quick(DriverKind::Single)).expect("run");
        let report = sc.validate(&run);
        assert_eq!(report.scenario, sc.name());
        assert_eq!(report.n_particles, run.sys.len());
        assert!(report.energy_drift.is_finite(), "{}", sc.name());
        assert!(!report.checks.is_empty(), "{}: no checks registered", sc.name());
        // `passed` is exactly the conjunction of the named checks…
        let want = report.checks.iter().all(|c| c.passed);
        assert_eq!(report.passed, want, "{}", sc.name());
        // …and every norm-reporting scenario gates its norm through an
        // explicit check at the registered tolerance, so the L1 gate
        // has exactly one source of truth.
        if report.norms.is_some() {
            assert!(
                report.checks.iter().any(|c| c.threshold == report.l1_tolerance),
                "{}: reported norms but no check at the registered tolerance",
                sc.name()
            );
        }
        // The JSON serialisation is structurally sound and carries the
        // scenario name and every check.
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(&format!("\"scenario\":{:?}", sc.name())));
        for c in &report.checks {
            assert!(json.contains(&format!("{:?}", c.name)), "missing check {}", c.name);
        }
        assert_eq!(
            json.matches("\"name\":").count(),
            report.checks.len(),
            "one JSON object per check"
        );
    }
}

#[test]
fn runner_samples_the_tracked_diagnostic() {
    let reg = ScenarioRegistry::builtin();
    // Gresho tracks peak-band v_φ: with sample_every = 1 a 2-step run
    // yields the t = 0 sample plus one per step.
    let sc = reg.get("gresho").unwrap();
    let run = run_scenario(sc, &quick(DriverKind::Single)).unwrap();
    assert!(run.samples.len() >= 3, "expected ≥ 3 samples, got {}", run.samples.len());
    assert!(run.samples.windows(2).all(|w| w[1].time > w[0].time));
}

#[test]
fn readme_scenario_catalogue_is_in_sync_with_the_registry() {
    // The README "Scenario catalogue" table is generated from
    // `ScenarioRegistry::catalogue_markdown()`. The comparison is
    // *bidirectional*: the whole table block after the generation
    // marker must equal the generated markdown exactly, so both a
    // missing row (scenario added) and a stale row (scenario removed
    // or renamed) fail.
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md at the workspace root");
    let marker = "<!-- generated by: scenario_suite --list -->";
    let after =
        readme.split_once(marker).unwrap_or_else(|| panic!("README lost the {marker:?} marker")).1;
    let table_in_readme: Vec<&str> = after
        .lines()
        .skip_while(|l| l.trim().is_empty())
        .take_while(|l| l.starts_with('|'))
        .collect();
    let generated: Vec<String> =
        ScenarioRegistry::builtin().catalogue_markdown().lines().map(str::to_string).collect();
    assert_eq!(
        table_in_readme, generated,
        "README scenario catalogue is stale — regenerate with `scenario_suite --list`"
    );
}
