//! Integration: self-healing distributed stepping under seeded fault
//! schedules.
//!
//! The contract under test is the recovery acceptance criterion: for any
//! *survivable* fault schedule (killed ranks respawnable, at least one
//! checkpoint generation intact, rollback budget sufficient), the
//! [`ResilientSimulation`] finishes with a state **bit-identical** to the
//! same simulation run with no faults at all — at nranks ∈ {1, 2, 4} and
//! for any `SPH_THREADS` (the CI matrix sets it). Unsurvivable schedules
//! must surface as a typed [`RecoveryError`] naming the fault — never a
//! panic, never silent divergence.

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::core::diagnostics::state_fingerprint as fingerprint;
use sph_exa_repro::core::ParticleSystem;
use sph_exa_repro::domain::ExchangePath;
use sph_exa_repro::exa::{
    DistributedBuilder, DistributedSimulation, RecoveryError, ResilientConfig, ResilientSimulation,
    SchedulerMode,
};
use sph_exa_repro::ft::chaos::{CorruptionMode, FaultKind, FaultPlan};
use sph_exa_repro::ft::MemoryStore;
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

const STEPS: u64 = 6;
const RANK_COUNTS: [usize; 3] = [1, 2, 4];

fn patch_ic() -> ParticleSystem {
    square_patch(&SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() })
}

fn patch_sph() -> SphConfig {
    let cfg = SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() };
    SphConfig { gamma: cfg.gamma, target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
}

fn build(nranks: usize) -> DistributedSimulation {
    DistributedBuilder::new(patch_ic()).config(patch_sph()).nranks(nranks).build().unwrap()
}

/// The fault-free trajectory every chaos run must land on exactly.
fn fault_free_fingerprint(nranks: usize) -> u64 {
    let mut reference = build(nranks);
    reference.run(STEPS as usize).expect("stable fault-free run");
    fingerprint(&reference.sys)
}

fn fixed_cadence(every: u64) -> ResilientConfig {
    ResilientConfig { scheduler: SchedulerMode::FixedSteps(every), ..Default::default() }
}

#[test]
fn survivable_schedule_is_bit_identical_to_the_fault_free_run() {
    // One of each survivable fault kind, spread over the run: a transient
    // carrier hiccup (absorbed by retry), an in-flight payload bit flip
    // (gates the step, rolls back), an in-memory SDC bit flip (caught by
    // the armed checksum detector), a respawnable rank kill, and bit rot
    // in the newest stored checkpoint (forces generation fallback when
    // paired with the SDC flip scheduled at the same boundary).
    for &nranks in &RANK_COUNTS {
        let want = fault_free_fingerprint(nranks);
        let plan = FaultPlan::new(42)
            .at(1, FaultKind::Transient { path: ExchangePath::DtReduce, failures: 2 })
            .at(
                2,
                FaultKind::CorruptPayload { path: ExchangePath::GhostRefresh, bit: 7, repeat: 1 },
            )
            .at(3, FaultKind::CorruptField)
            .at(4, FaultKind::KillRank { rank: 1, respawnable: true })
            .at(
                5,
                FaultKind::CorruptNewestCheckpoint {
                    mode: CorruptionMode::BitFlip { byte: 11, bit: 3 },
                },
            )
            .at(5, FaultKind::CorruptField);
        let mut resilient = ResilientSimulation::new(
            build(nranks),
            Box::new(MemoryStore::new()),
            &plan,
            fixed_cadence(2),
        )
        .unwrap();
        let stats = resilient.run(STEPS).expect("survivable schedule must complete");

        assert_eq!(
            fingerprint(resilient.sys()),
            want,
            "chaos run diverged from the fault-free trajectory at nranks={nranks}"
        );
        assert_eq!(resilient.sys().step_count, STEPS);
        // The schedule demonstrably exercised the machinery.
        assert!(stats.rollbacks >= 3, "rollbacks: {}", stats.rollbacks);
        assert_eq!(stats.sdc_injected, 2);
        assert_eq!(stats.checkpoints_corrupted, 1);
        assert_eq!(stats.ranks_respawned, 1);
        assert!(stats.steps_replayed > 0, "rollback must recompute steps");
        assert!(
            stats.detections.iter().any(|d| d.detector == "checksum"),
            "the armed checksum detector must catch the in-memory flip: {:?}",
            stats.detections
        );
        assert!(
            stats.detections.iter().any(|d| d.detector == "exchange"),
            "carrier faults must be recorded: {:?}",
            stats.detections
        );
        assert!(
            stats.rollback_records.iter().any(|r| r.generations_skipped >= 1),
            "the corrupted newest generation must be skipped: {:?}",
            stats.rollback_records
        );
        // Transient hiccups healed inside the retry loop, not by rollback.
        let log = resilient.into_inner().exchange_log();
        assert!(log.transient_retries >= 2, "retries: {}", log.transient_retries);
    }
}

#[test]
fn transient_faults_heal_in_place_without_rollback() {
    let want = fault_free_fingerprint(2);
    let plan = FaultPlan::new(7)
        .at(1, FaultKind::Transient { path: ExchangePath::HaloNegotiation, failures: 2 })
        .at(3, FaultKind::Transient { path: ExchangePath::DtReduce, failures: 1 });
    let mut resilient =
        ResilientSimulation::new(build(2), Box::new(MemoryStore::new()), &plan, fixed_cadence(3))
            .unwrap();
    let stats = resilient.run(STEPS).unwrap();
    assert_eq!(stats.rollbacks, 0, "bounded retry must absorb transients: {stats:?}");
    assert_eq!(stats.steps_replayed, 0);
    assert_eq!(fingerprint(resilient.sys()), want);
    assert!(resilient.into_inner().exchange_log().transient_retries >= 3);
}

#[test]
fn non_respawnable_rank_kill_is_a_typed_rank_lost_error() {
    let plan = FaultPlan::new(3).at(2, FaultKind::KillRank { rank: 1, respawnable: false });
    let mut resilient =
        ResilientSimulation::new(build(2), Box::new(MemoryStore::new()), &plan, fixed_cadence(2))
            .unwrap();
    let err = resilient.run(STEPS).expect_err("a lost rank is unsurvivable");
    assert_eq!(err, RecoveryError::RankLost { rank: 1 });
    // The error names the fault in prose too.
    assert!(err.to_string().contains("rank 1"), "{err}");
}

#[test]
fn all_generations_corrupted_is_a_typed_no_valid_checkpoint_error() {
    // Retention 1 and a cadence that never fires: generation 0 is the
    // only rollback target. Corrupt it, then force a rollback.
    let plan = FaultPlan::new(9)
        .at(1, FaultKind::CorruptNewestCheckpoint { mode: CorruptionMode::Truncate { keep: 6 } })
        .at(2, FaultKind::CorruptField);
    let rcfg = ResilientConfig {
        scheduler: SchedulerMode::FixedSteps(1000),
        retention: 1,
        ..Default::default()
    };
    let mut resilient =
        ResilientSimulation::new(build(2), Box::new(MemoryStore::new()), &plan, rcfg).unwrap();
    let err = resilient.run(STEPS).expect_err("no intact checkpoint is unsurvivable");
    match err {
        RecoveryError::NoValidCheckpoint { tried, ref last_error } => {
            assert_eq!(tried, 1);
            assert!(last_error.contains("checksum"), "{last_error}");
        }
        other => panic!("expected NoValidCheckpoint, got {other:?}"),
    }
}

#[test]
fn rollback_budget_exhaustion_is_a_typed_no_progress_error() {
    let plan = FaultPlan::new(5).at(1, FaultKind::CorruptField).at(2, FaultKind::CorruptField);
    let rcfg = ResilientConfig { max_rollbacks: 1, ..fixed_cadence(2) };
    let mut resilient =
        ResilientSimulation::new(build(2), Box::new(MemoryStore::new()), &plan, rcfg).unwrap();
    let err = resilient.run(STEPS).expect_err("budget of 1 cannot absorb two faults");
    assert!(
        matches!(err, RecoveryError::NoProgress { rollbacks: 2, .. }),
        "expected NoProgress, got {err:?}"
    );
}

#[test]
fn empty_plan_adds_no_overhead_to_the_trajectory() {
    // A resilient wrapper with nothing scheduled must be a pure
    // pass-through: same bits, zero rollbacks, checkpoints on cadence.
    let want = fault_free_fingerprint(4);
    let plan = FaultPlan::new(1);
    let mut resilient =
        ResilientSimulation::new(build(4), Box::new(MemoryStore::new()), &plan, fixed_cadence(2))
            .unwrap();
    let stats = resilient.run(STEPS).unwrap();
    assert_eq!(fingerprint(resilient.sys()), want);
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(stats.detections, vec![]);
    // gen0 + one per two steps.
    assert_eq!(stats.checkpoints_written, 1 + STEPS / 2);
    assert!(stats.checkpoint_bytes > 0);
}
