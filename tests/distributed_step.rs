//! Integration: the multi-rank distributed step driver vs the single-rank
//! reference.
//!
//! The contract under test is the acceptance criterion of the distributed
//! subsystem: `DistributedSimulation` at nranks ∈ {1, 2, 4} produces
//! **bit-identical** full-state fingerprints to the single-rank
//! `Simulation` over ≥ 10 macro-steps of the square patch and the Evrard
//! collapse, for SPH_THREADS ∈ {1, 4}, including after a mid-run per-rank
//! checkpoint/restore — and migration provably moves particles between
//! owners without moving a single bit of physics.

use sph_exa_repro::core::config::SphConfig;
use sph_exa_repro::core::diagnostics::state_fingerprint as fingerprint;
use sph_exa_repro::core::ParticleSystem;
use sph_exa_repro::exa::{
    DistributedBuilder, DistributedConfig, DistributedSimulation, RankPartitioner,
    SimulationBuilder,
};
use sph_exa_repro::ft::checkpoint::DiskStore;
use sph_exa_repro::scenarios::{evrard_collapse, square_patch, EvrardConfig, SquarePatchConfig};
use sph_exa_repro::tree::{GravityConfig, MultipoleOrder};

const STEPS: usize = 10;
const RANK_COUNTS: [usize; 3] = [1, 2, 4];
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn patch_ic() -> ParticleSystem {
    square_patch(&SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() })
}

fn patch_sph() -> SphConfig {
    let cfg = SquarePatchConfig { nx: 10, nz: 10, ..SquarePatchConfig::default() };
    SphConfig { gamma: cfg.gamma, target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
}

fn evrard_ic() -> ParticleSystem {
    evrard_collapse(&EvrardConfig { n_target: 800, seed: 7, ..EvrardConfig::default() })
}

fn evrard_gravity() -> GravityConfig {
    GravityConfig { g: 1.0, theta: 0.6, softening: 1e-2, order: MultipoleOrder::Quadrupole }
}

fn evrard_sph() -> SphConfig {
    SphConfig { target_neighbors: 40, max_h_iterations: 5, ..Default::default() }
}

#[test]
fn square_patch_matches_single_rank_across_ranks_and_threads() {
    let mut reference =
        SimulationBuilder::new(patch_ic()).config(patch_sph()).num_threads(1).build().unwrap();
    reference.run(STEPS).expect("stable reference run");
    let want = fingerprint(&reference.sys);

    for &nranks in &RANK_COUNTS {
        for &threads in &THREAD_COUNTS {
            let mut dist = DistributedBuilder::new(patch_ic())
                .config(patch_sph())
                .nranks(nranks)
                .num_threads(threads)
                .build()
                .unwrap();
            dist.run(STEPS).expect("stable distributed run");
            assert_eq!(
                fingerprint(&dist.sys),
                want,
                "square patch diverged at nranks={nranks}, SPH_THREADS={threads}"
            );
        }
    }
}

#[test]
fn evrard_with_gravity_matches_single_rank_across_ranks_and_threads() {
    let mut reference = SimulationBuilder::new(evrard_ic())
        .config(evrard_sph())
        .gravity(evrard_gravity())
        .num_threads(1)
        .build()
        .unwrap();
    reference.run(STEPS).expect("stable reference run");
    let want = fingerprint(&reference.sys);

    for &nranks in &RANK_COUNTS {
        for &threads in &THREAD_COUNTS {
            let mut dist = DistributedBuilder::new(evrard_ic())
                .config(evrard_sph())
                .gravity(evrard_gravity())
                .nranks(nranks)
                .num_threads(threads)
                .build()
                .unwrap();
            dist.run(STEPS).expect("stable distributed run");
            assert_eq!(
                fingerprint(&dist.sys),
                want,
                "Evrard diverged at nranks={nranks}, SPH_THREADS={threads}"
            );
        }
    }
}

#[test]
fn migration_provably_changes_owners_and_no_bits() {
    // The square patch rotates, so particles cross the static rank boxes
    // within a few steps. Disable rebalancing so every ownership change is
    // attributable to the migration protocol alone.
    let mut dist = DistributedBuilder::new(patch_ic())
        .config(patch_sph())
        .distributed(DistributedConfig { nranks: 4, rebalance_every: 0, ..Default::default() })
        .build()
        .unwrap();
    let initial_owners = dist.decomposition().assignment.clone();
    dist.run(STEPS).expect("stable distributed run");
    let owners = &dist.decomposition().assignment;
    let moved = initial_owners.iter().zip(owners).filter(|(a, b)| a != b).count();
    assert!(moved > 0, "rotating patch must migrate particles across rank boxes");
    assert!(dist.exchange_log().migrations as usize >= moved);

    let mut reference = SimulationBuilder::new(patch_ic()).config(patch_sph()).build().unwrap();
    reference.run(STEPS).expect("stable reference run");
    assert_eq!(
        fingerprint(&dist.sys),
        fingerprint(&reference.sys),
        "migration changed physics bits"
    );
}

#[test]
fn rebalancing_with_measured_work_keeps_bits_and_balance() {
    let mut dist = DistributedBuilder::new(evrard_ic())
        .config(evrard_sph())
        .gravity(evrard_gravity())
        .distributed(DistributedConfig {
            nranks: 4,
            partitioner: RankPartitioner::Orb,
            rebalance_every: 3,
            halo_growth_steps: 1,
            ..Default::default()
        })
        .build()
        .unwrap();
    dist.run(6).expect("stable distributed run");
    assert!(dist.exchange_log().rebalances >= 2);
    assert!(dist.imbalance() < 1.5, "work-weighted ORB should stay balanced");

    let mut reference = SimulationBuilder::new(evrard_ic())
        .config(evrard_sph())
        .gravity(evrard_gravity())
        .build()
        .unwrap();
    reference.run(6).expect("stable reference run");
    assert_eq!(fingerprint(&dist.sys), fingerprint(&reference.sys));
}

#[test]
fn mid_run_checkpoint_restore_reproduces_the_uninterrupted_fingerprint() {
    let dir = std::env::temp_dir().join(format!("sphexa-dist-{}", std::process::id()));
    let dcfg = DistributedConfig { nranks: 4, ..Default::default() };

    let mut run =
        DistributedBuilder::new(patch_ic()).config(patch_sph()).distributed(dcfg).build().unwrap();
    run.run(STEPS / 2).expect("stable first half");
    {
        let mut store = DiskStore::new(&dir).unwrap();
        run.checkpoint(&mut store, "mid").unwrap();
    }
    run.run(STEPS - STEPS / 2).expect("stable second half");
    let uninterrupted = fingerprint(&run.sys);

    // A brand-new store instance (≈ a restarted set of rank processes).
    let store = DiskStore::new(&dir).unwrap();
    let mut replay =
        DistributedSimulation::restore(&store, "mid", patch_sph(), None, dcfg).unwrap();
    replay.run(STEPS - STEPS / 2).expect("stable replay");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        fingerprint(&replay.sys),
        uninterrupted,
        "restore must reproduce the uninterrupted run bit-for-bit"
    );

    // And the whole lineage must equal the single-rank reference.
    let mut reference = SimulationBuilder::new(patch_ic()).config(patch_sph()).build().unwrap();
    reference.run(STEPS).expect("stable reference run");
    assert_eq!(uninterrupted, fingerprint(&reference.sys));
}
