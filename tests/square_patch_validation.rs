//! Integration: the rotating square patch (§5.1) runs under every parent
//! configuration and behaves like the Colagrossi test should.

use sph_exa_repro::core::diagnostics::Conservation;
use sph_exa_repro::exa::SimulationBuilder;
use sph_exa_repro::math::Vec3;
use sph_exa_repro::parents::{changa, sphflow, sphynx};
use sph_exa_repro::scenarios::{square_patch, SquarePatchConfig};

fn patch(nx: usize, gamma: f64) -> sph_exa_repro::core::ParticleSystem {
    square_patch(&SquarePatchConfig { nx, nz: nx, gamma, ..Default::default() })
}

#[test]
fn all_three_parent_configs_step_the_square_patch() {
    for setup in [sphynx(), changa(), sphflow()] {
        let sys = patch(12, setup.sph.gamma);
        let mut sim = SimulationBuilder::new(sys)
            .config(setup.sph)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", setup.name));
        let report = sim.step().expect("stable step");
        assert!(report.dt > 0.0, "{}", setup.name);
        assert!(report.stats.sph_interactions > 0, "{}", setup.name);
        assert!(sim.sys.sanity_check().is_ok(), "{}", setup.name);
    }
}

#[test]
fn angular_momentum_is_conserved_over_many_steps() {
    let setup = sphflow();
    let sys = patch(14, setup.sph.gamma);
    let axis = Vec3::new(0.5, 0.5, 0.0);
    let lz = |s: &sph_exa_repro::core::ParticleSystem| -> f64 {
        (0..s.len())
            .map(|i| {
                let d = s.x[i] - axis;
                s.m[i] * (d.x * s.v[i].y - d.y * s.v[i].x)
            })
            .sum()
    };
    let mut sim = SimulationBuilder::new(sys).config(setup.sph).build().unwrap();
    let lz0 = lz(&sim.sys);
    assert!(lz0.abs() > 1e-3, "the patch must actually rotate");
    sim.run(10).expect("stable steps");
    let lz1 = lz(&sim.sys);
    assert!(((lz1 - lz0) / lz0).abs() < 1e-3, "angular momentum drifted: {lz0} → {lz1}");
}

#[test]
fn rotation_is_recognised_as_pure_shear() {
    // After the first derivative evaluation the velocity-gradient fields
    // must show |∇×v| ≈ 2ω and ∇·v ≈ 0 in the bulk — this is what the
    // Balsara switch keys on to keep the patch inviscid.
    let setup = sphynx();
    let sys = patch(16, setup.sph.gamma);
    let omega = 5.0;
    let mut sim = SimulationBuilder::new(sys).config(setup.sph).build().unwrap();
    let all: Vec<u32> = (0..sim.sys.len() as u32).collect();
    sim.evaluate_derivatives(&all);
    let mut checked = 0;
    for i in 0..sim.sys.len() {
        let p = sim.sys.x[i];
        if (p.x - 0.5).abs() < 0.2 && (p.y - 0.5).abs() < 0.2 {
            assert!(
                (sim.sys.curl_v[i] - 2.0 * omega).abs() < 0.15 * 2.0 * omega,
                "curl {} at particle {i}",
                sim.sys.curl_v[i]
            );
            assert!(
                sim.sys.div_v[i].abs() < 0.1 * 2.0 * omega,
                "div {} at particle {i}",
                sim.sys.div_v[i]
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "only {checked} bulk particles checked");
}

#[test]
fn twenty_step_run_stays_physical() {
    // Table 5: "Simulation Length: 20 time-steps" — the acceptance run.
    let setup = sphflow();
    let sys = patch(10, setup.sph.gamma);
    let mut sim = SimulationBuilder::new(sys).config(setup.sph).build().unwrap();
    let c0 = Conservation::measure(&sim.sys, None);
    let reports = sim.run(20).expect("stable steps");
    assert_eq!(reports.len(), 20);
    assert!(sim.sys.sanity_check().is_ok());
    let c1 = Conservation::measure(&sim.sys, None);
    assert!((c1.total_mass - c0.total_mass).abs() < 1e-12, "mass is exactly conserved");
    assert!(c1.energy_drift(&c0) < 0.05, "energy drift {}", c1.energy_drift(&c0));
    // Momentum stays near zero (the patch spins in place).
    let scale = sph_exa_repro::core::diagnostics::momentum_scale(&sim.sys);
    assert!(c1.momentum.norm() < 1e-6 * scale);
}
