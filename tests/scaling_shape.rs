//! Integration: the strong-scaling experiments reproduce the *shape* of
//! Figs. 1–3 — who wins, by roughly what factor, where scaling stalls.
//! (Absolute seconds are calibrated; shapes are measured — DESIGN.md §2.)

use sph_exa_repro::cluster::{piz_daint, scaling_experiment, ScalingConfig, StepModelConfig};
use sph_exa_repro::parents::{changa, sphflow, sphynx, CodeSetup, Scenario};

const N: usize = 4_000;

fn rows_for(setup: &CodeSetup, scenario: Scenario) -> Vec<sph_exa_repro::cluster::ScalingRow> {
    let mut sim = match scenario {
        Scenario::SquarePatch => sph_bench_helpers::square(setup, N),
        Scenario::Evrard => sph_bench_helpers::evrard(setup, N),
    };
    let model = StepModelConfig {
        partitioner: setup.partitioner,
        balancing: setup.balancing,
        machine: piz_daint(),
        cost: setup.cost_for(scenario),
    };
    let cfg = ScalingConfig { core_counts: vec![12, 48, 192, 768], steps: 2 };
    let (rows, _) = scaling_experiment(&mut sim, &model, &cfg).unwrap();
    rows
}

/// Local builders (mirror sph-bench's, kept here so the integration test
/// exercises the public APIs directly).
mod sph_bench_helpers {
    use super::*;
    use sph_exa_repro::core::config::SphConfig;
    use sph_exa_repro::exa::{Simulation, SimulationBuilder};
    use sph_exa_repro::scenarios::{
        evrard_collapse, square_patch, EvrardConfig, SquarePatchConfig,
    };

    pub fn square(setup: &CodeSetup, n: usize) -> Simulation {
        let nx = (n as f64).cbrt().round() as usize;
        let cfg = SquarePatchConfig { nx, nz: nx, gamma: setup.sph.gamma, ..Default::default() };
        let sph = SphConfig { gamma: cfg.gamma, ..setup.sph };
        SimulationBuilder::new(square_patch(&cfg)).config(sph).build().unwrap()
    }

    pub fn evrard(setup: &CodeSetup, n: usize) -> Simulation {
        let cfg = EvrardConfig { n_target: n, ..Default::default() };
        SimulationBuilder::new(evrard_collapse(&cfg))
            .config(setup.sph)
            .gravity(setup.gravity.expect("gravity"))
            .build()
            .unwrap()
    }
}

#[test]
fn every_code_speeds_up_then_stalls() {
    // Fig. 1–3 common shape: good strong scaling while particles/core is
    // high, collapsing efficiency once it is not ("scaling stalls when
    // there are not enough particles/core").
    for (setup, scenario) in [
        (sphynx(), Scenario::SquarePatch),
        (sphflow(), Scenario::SquarePatch),
        (sphynx(), Scenario::Evrard),
    ] {
        let rows = rows_for(&setup, scenario);
        let t12 = rows[0].mean_step_time;
        let t48 = rows[1].mean_step_time;
        let t768 = rows[3].mean_step_time;
        assert!(t48 < t12 / 2.0, "{} {scenario:?}: no early speedup ({t12} → {t48})", setup.name);
        let eff_48 = t12 / t48 / 4.0;
        let eff_768 = t12 / t768 / 64.0;
        assert!(
            eff_768 < 0.7 * eff_48,
            "{} {scenario:?}: no stall (eff {eff_48} → {eff_768})",
            setup.name
        );
    }
}

#[test]
fn changa_square_is_much_slower_than_sphynx_square() {
    // Fig. 2a vs Fig. 1a at matched cores: ~19× at the 12-core anchor.
    let changa_rows = rows_for(&changa(), Scenario::SquarePatch);
    let sphynx_rows = rows_for(&sphynx(), Scenario::SquarePatch);
    let ratio = changa_rows[0].mean_step_time / sphynx_rows[0].mean_step_time;
    assert!(
        ratio > 5.0,
        "ChaNGa must be far slower than SPHYNX on the square test, got {ratio:.1}×"
    );
}

#[test]
fn changa_evrard_is_much_faster_than_changa_square() {
    // Fig. 2b vs Fig. 2a: 30 s vs 738 s at the same core count — gravity
    // is ChaNGa's home turf, CFD is not.
    let square = rows_for(&changa(), Scenario::SquarePatch);
    let evrard = rows_for(&changa(), Scenario::Evrard);
    assert!(
        evrard[0].mean_step_time < square[0].mean_step_time / 3.0,
        "Evrard {} should be ≪ square {}",
        evrard[0].mean_step_time,
        square[0].mean_step_time
    );
}

#[test]
fn sphynx_static_slabs_imbalance_on_evrard() {
    // SPHYNX's static slab decomposition is fine on the uniform square
    // patch but imbalances on the centrally-condensed Evrard cloud — the
    // §5.2 load-imbalance finding.
    let square = rows_for(&sphynx(), Scenario::SquarePatch);
    let evrard = rows_for(&sphynx(), Scenario::Evrard);
    let lb_square = square[2].mean_load_balance; // 192 cores
    let lb_evrard = evrard[2].mean_load_balance;
    assert!(
        lb_evrard < lb_square,
        "Evrard LB {lb_evrard} should be worse than square LB {lb_square}"
    );
}

#[test]
fn particles_per_core_column_matches_problem_size() {
    let rows = rows_for(&sphflow(), Scenario::SquarePatch);
    for r in &rows {
        let n = (N as f64).cbrt().round().powi(3);
        assert!((r.particles_per_core - n / r.cores as f64).abs() < 1.0);
    }
}
